#include "traffic/derouting.h"

#include <algorithm>
#include <cmath>

#include "ch/ch_customize.h"
#include "ch/ch_profile.h"
#include "ch/ch_query.h"

namespace ecocharge {

// The hierarchy is customized per class-weight vector, so the only
// structural requirement is that ChArc's per-class lengths span RoadClass.
static_assert(kChNumClasses == 3,
              "CH per-class lengths must cover every RoadClass");

DeroutingService::DeroutingService(
    std::shared_ptr<const RoadNetwork> network,
    const CongestionModel* congestion, double detour_factor,
    double exact_time_bucket_s)
    : network_(std::move(network)),
      congestion_(congestion),
      detour_factor_(detour_factor),
      exact_time_bucket_s_(exact_time_bucket_s),
      search_(*network_),
      back_search_(*network_) {}

DeroutingService::~DeroutingService() = default;

/// The batch's reusable elimination-tree label spaces: the three shared
/// endpoint spaces plus the two per-charger ones the loop overwrites.
struct DeroutingService::ChBatchSpaces {
  ChSpace m_fwd;
  ChSpace ra_bwd;
  ChSpace rb_bwd;
  ChSpace b_bwd;
  ChSpace b_fwd;
};

/// EtaWindow's reusable multi-lane spaces and per-lane meet scratch.
struct DeroutingService::ChProfileScratch {
  ChProfileSpace m_fwd;
  ChProfileSpace b_bwd;
  std::vector<double> dist;
  std::vector<uint32_t> fpos;
  std::vector<uint32_t> bpos;
};

void DeroutingService::set_ch(const ChIndex* ch, ChCustomizationCache* cache,
                              int threads) {
  ch_ = ch;
  ch_cache_ = ch != nullptr ? cache : nullptr;
  ch_threads_ = threads;
  ch_query_ = ch != nullptr ? std::make_unique<ChQuery>(*ch) : nullptr;
  ch_spaces_ = ch != nullptr ? std::make_unique<ChBatchSpaces>() : nullptr;
  if (ch_query_ != nullptr) {
    ch_query_->set_cache(ch_cache_);
    ch_query_->set_threads(threads);
    ch_query_->AttachMetrics(ch_metrics_);
  }
  ch_customizer_.reset();
  ch_last_plane_.reset();
  ch_profile_.reset();
  ch_planes_.clear();
  ch_profile_scratch_ =
      ch != nullptr ? std::make_unique<ChProfileScratch>() : nullptr;
}

void DeroutingService::AttachChMetrics(obs::MetricsRegistry* registry) {
  ch_metrics_ = registry;
  if (ch_query_ != nullptr) ch_query_->AttachMetrics(registry);
}

double DeroutingService::CruiseSpeed(SimTime t) const {
  return FreeFlowSpeed(RoadClass::kArterial) *
         congestion_->ActualSpeedFactor(RoadClass::kArterial, t);
}

DeroutingEstimate DeroutingService::Estimate(const DeroutingQuery& query,
                                             const EvCharger& charger) const {
  return Estimate(query, charger,
                  congestion_->ForecastSpeedFactor(RoadClass::kArterial,
                                                   query.now, query.now));
}

DeroutingEstimate DeroutingService::Estimate(
    const DeroutingQuery& query, const EvCharger& charger,
    const CongestionModel::Band& band) const {
  double to_charger = Distance(query.vehicle_position, charger.position);
  double back = std::min(Distance(charger.position, query.return_point_a),
                         Distance(charger.position, query.return_point_b));
  double on_route =
      std::min(Distance(query.vehicle_position, query.return_point_a),
               Distance(query.vehicle_position, query.return_point_b));
  // Euclidean distances are admissible lower bounds on network distance;
  // the detour factor gives the typical upper estimate. The congestion
  // band converts "distance" into "effective cost distance" (congested
  // roads cost proportionally more time/energy).
  double optimistic = std::max(0.0, to_charger + back - on_route);
  double pessimistic =
      std::max(0.0, (to_charger + back) * detour_factor_ - on_route);
  DeroutingEstimate est;
  est.extra_distance_min_m = optimistic;
  // Slow traffic (band.min) inflates the effective pessimistic cost.
  est.extra_distance_max_m = pessimistic / std::max(band.min, 0.10);
  if (est.extra_distance_max_m < est.extra_distance_min_m) {
    est.extra_distance_max_m = est.extra_distance_min_m;
  }
  double speed = FreeFlowSpeed(RoadClass::kArterial) *
                 (band.min + band.max) * 0.5;
  est.eta_s = to_charger * detour_factor_ / std::max(speed, 1.0);
  return est;
}

SimTime DeroutingService::ExactCostTime(SimTime now) const {
  if (exact_time_bucket_s_ <= 0.0) return now;
  return std::floor(now / exact_time_bucket_s_) * exact_time_bucket_s_;
}

bool DeroutingService::EnsureBackwardSweep(NodeId ra, NodeId rb,
                                           SimTime tau) {
  BackwardKey key{ra, rb, tau};
  if (key == back_key_) {
    ++warm_start_hits_;
    return true;
  }
  // Multi-source seed: both return points at cost 0, so the sweep settles
  // min(d(v -> r_a), d(v -> r_b)) for every v it reaches — the "whichever
  // return point deroutes less" minimum, for all chargers at once.
  NodeId sources[2] = {ra, rb};
  back_search_.StartSweep(std::span<const NodeId>(sources, 2),
                          SweepDirection::kBackward);
  back_key_ = key;
  ++backward_sweep_starts_;
  return false;
}

namespace {

/// Resolved node triple of one derouting query.
struct QueryNodes {
  NodeId m;
  NodeId ra;
  NodeId rb;
};

QueryNodes ResolveNodes(const RoadNetwork& network,
                        const DeroutingQuery& query) {
  QueryNodes nodes;
  nodes.m = query.vehicle_node != kInvalidNode
                ? query.vehicle_node
                : network.NearestNode(query.vehicle_position);
  nodes.ra = query.return_node_a != kInvalidNode
                 ? query.return_node_a
                 : network.NearestNode(query.return_point_a);
  nodes.rb = query.return_node_b != kInvalidNode
                 ? query.return_node_b
                 : network.NearestNode(query.return_point_b);
  return nodes;
}

DeroutingEstimate UnreachableEstimate() {
  DeroutingEstimate est;
  est.extra_distance_min_m = est.extra_distance_max_m = kInfiniteCost;
  est.eta_s = kInfiniteCost;
  return est;
}

/// The per-class weights the exact cost lambda realizes at cost time tau.
/// The CH search uses them only to pick the argmin path; costs are refolded
/// over the unpacked edges with the lambda itself.
ChClassWeights ChWeightsAt(const CongestionModel& congestion, SimTime tau) {
  ChClassWeights weights;
  for (int c = 0; c < kChNumClasses; ++c) {
    weights.w[c] =
        1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c), tau);
  }
  return weights;
}

/// min(d(from -> ra), d(from -> rb)), each leg folded the way the backward
/// multi-source sweep would have accumulated it.
double ChReturnCost(ChQuery* query, const RoadNetwork& network, NodeId from,
                    NodeId ra, NodeId rb, const ChClassWeights& weights,
                    const EdgeCostFn& cost, std::vector<EdgeId>* scratch) {
  const double ca = ChExactPathCost(query, network, from, ra, weights, cost,
                                    SweepDirection::kBackward, scratch);
  const double cb = ChExactPathCost(query, network, from, rb, weights, cost,
                                    SweepDirection::kBackward, scratch);
  return std::min(ca, cb);
}

/// ChExactPathCost over two prebuilt label spaces: meet, unpack, refold in
/// the reference sweep's association order (same grouping rule as
/// ChExactPathCost, so the bits match the Dijkstra oracle).
double SpaceExactPathCost(ChQuery* query, const RoadNetwork& network,
                          const ChSpace& fwd, const ChSpace& bwd,
                          const EdgeCostFn& cost, SweepDirection fold,
                          std::vector<EdgeId>* scratch) {
  uint32_t fpos = 0;
  uint32_t bpos = 0;
  const double d = query->MeetSpaces(fwd, bwd, &fpos, &bpos);
  if (!(d < kInfiniteCost)) return kInfiniteCost;
  query->UnpackMeet(fwd, fpos, bwd, bpos, scratch);
  double acc = 0.0;
  if (fold == SweepDirection::kForward) {
    for (EdgeId e : *scratch) acc = acc + cost(network.arc(e));
  } else {
    for (auto it = scratch->rbegin(); it != scratch->rend(); ++it) {
      acc = acc + cost(network.arc(*it));
    }
  }
  return acc;
}

}  // namespace

DeroutingEstimate DeroutingService::Exact(const DeroutingQuery& query,
                                          const EvCharger& charger) {
  const QueryNodes nodes = ResolveNodes(*network_, query);
  const size_t num_nodes = network_->NumNodes();
  if (nodes.m >= num_nodes || charger.node >= num_nodes) {
    return UnreachableEstimate();
  }

  // Cost = congested travel distance: length / speed_factor(class, tau),
  // i.e. congested roads count longer, matching Eq. 3's weighted edges.
  // tau is the (possibly bucketed) cost time, shared with ExactBatch so
  // both fidelities accumulate the same doubles.
  const SimTime tau = ExactCostTime(query.now);
  auto cost = [this, tau](const Arc& e) {
    return e.length_m /
           congestion_->ActualSpeedFactor(e.road_class, tau);
  };

  if (ch_ != nullptr) {
    const ChClassWeights weights = ChWeightsAt(*congestion_, tau);
    const double to_b =
        ChExactPathCost(ch_query_.get(), *network_, nodes.m, charger.node,
                        weights, cost, SweepDirection::kForward, &ch_edges_);
    if (!std::isfinite(to_b)) return UnreachableEstimate();
    const double back =
        ChReturnCost(ch_query_.get(), *network_, charger.node, nodes.ra,
                     nodes.rb, weights, cost, &ch_edges_);
    const double direct = ChReturnCost(ch_query_.get(), *network_, nodes.m,
                                       nodes.ra, nodes.rb, weights, cost,
                                       &ch_edges_);
    double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                   (std::isfinite(direct) ? direct : 0.0);
    extra = std::max(0.0, extra);
    DeroutingEstimate est;
    est.extra_distance_min_m = est.extra_distance_max_m = extra;
    est.eta_s = to_b / std::max(CruiseSpeed(tau), 1.0);
    return est;
  }

  // Outbound leg: single-target forward sweep (stops at the charger).
  NodeId fwd_targets[1] = {charger.node};
  search_.OneToMany(nodes.m, std::span<const NodeId>(fwd_targets, 1), cost);
  const double to_b = search_.CostTo(charger.node);
  if (!std::isfinite(to_b)) return UnreachableEstimate();

  // Return leg + direct cost from the shared backward sweep: extending to
  // {b, m} settles min(d(b -> r_a), d(b -> r_b)) and the on-route cost
  // d(m -> {r_a, r_b}) in one pass.
  EnsureBackwardSweep(nodes.ra, nodes.rb, tau);
  NodeId back_targets[2] = {charger.node, nodes.m};
  back_search_.ExtendSweep(std::span<const NodeId>(back_targets, 2), cost);
  const double back = back_search_.CostTo(charger.node);
  const double direct = back_search_.CostTo(nodes.m);

  double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                 (std::isfinite(direct) ? direct : 0.0);
  extra = std::max(0.0, extra);
  DeroutingEstimate est;
  est.extra_distance_min_m = est.extra_distance_max_m = extra;
  est.eta_s = to_b / std::max(CruiseSpeed(tau), 1.0);
  return est;
}

bool DeroutingService::ChBatchExact(NodeId m, NodeId ra, NodeId rb,
                                    std::span<const ChargerRef> chargers,
                                    SimTime tau,
                                    std::vector<DeroutingEstimate>* out) {
  const size_t num_nodes = network_->NumNodes();
  auto cost = [this, tau](const Arc& e) {
    return e.length_m / congestion_->ActualSpeedFactor(e.road_class, tau);
  };
  const ChClassWeights weights = ChWeightsAt(*congestion_, tau);
  ch_query_->EnsureCustomized(weights);
  ChBatchSpaces& sp = *ch_spaces_;

  // Shared endpoint spaces: one forward space for the vehicle, one backward
  // space per return point. Every charger leg below is a meet against one
  // of these plus one per-charger space — for a refine_limit-sized batch
  // that is 3 + 2k half-spaces instead of 3k bidirectional searches.
  const bool m_ok = m < num_nodes;
  const bool ra_ok = ra < num_nodes;
  const bool rb_ok = rb < num_nodes;
  if (m_ok &&
      !ch_query_->BuildSpace(m, SweepDirection::kForward, &sp.m_fwd)) {
    return false;
  }
  if (ra_ok &&
      !ch_query_->BuildSpace(ra, SweepDirection::kBackward, &sp.ra_bwd)) {
    return false;
  }
  if (rb_ok &&
      !ch_query_->BuildSpace(rb, SweepDirection::kBackward, &sp.rb_bwd)) {
    return false;
  }
  const auto return_cost = [&](const ChSpace& from_fwd) {
    const double ca =
        ra_ok ? SpaceExactPathCost(ch_query_.get(), *network_, from_fwd,
                                   sp.ra_bwd, cost, SweepDirection::kBackward,
                                   &ch_edges_)
              : kInfiniteCost;
    const double cb =
        rb_ok ? SpaceExactPathCost(ch_query_.get(), *network_, from_fwd,
                                   sp.rb_bwd, cost, SweepDirection::kBackward,
                                   &ch_edges_)
              : kInfiniteCost;
    return std::min(ca, cb);
  };

  const double direct = m_ok ? return_cost(sp.m_fwd) : kInfiniteCost;
  const double cruise = std::max(CruiseSpeed(tau), 1.0);
  for (ChargerRef charger : chargers) {
    const NodeId b = charger->node;
    double to_b = kInfiniteCost;
    if (m_ok && b < num_nodes) {
      if (!ch_query_->BuildSpace(b, SweepDirection::kBackward, &sp.b_bwd)) {
        out->clear();
        return false;
      }
      to_b = SpaceExactPathCost(ch_query_.get(), *network_, sp.m_fwd,
                                sp.b_bwd, cost, SweepDirection::kForward,
                                &ch_edges_);
    }
    if (!std::isfinite(to_b)) {
      out->push_back(UnreachableEstimate());
      continue;
    }
    if (!ch_query_->BuildSpace(b, SweepDirection::kForward, &sp.b_fwd)) {
      out->clear();
      return false;
    }
    const double back = return_cost(sp.b_fwd);
    double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                   (std::isfinite(direct) ? direct : 0.0);
    extra = std::max(0.0, extra);
    DeroutingEstimate est;
    est.extra_distance_min_m = est.extra_distance_max_m = extra;
    est.eta_s = to_b / cruise;
    out->push_back(est);
  }
  return true;
}

BatchSweepStats DeroutingService::ExactBatch(
    const DeroutingQuery& query, std::span<const ChargerRef> chargers,
    DeroutingBatchScratch* scratch, std::vector<DeroutingEstimate>* out) {
  BatchSweepStats stats;
  stats.targets = chargers.size();
  out->clear();
  if (chargers.empty()) return stats;

  const QueryNodes nodes = ResolveNodes(*network_, query);
  const size_t num_nodes = network_->NumNodes();
  const SimTime tau = ExactCostTime(query.now);
  auto cost = [this, tau](const Arc& e) {
    return e.length_m /
           congestion_->ActualSpeedFactor(e.road_class, tau);
  };

  if (ch_ != nullptr) {
    // Space-sharing CH batch first; when the hierarchy rejects the
    // elimination-tree builder, per-leg bidirectional searches below give
    // the same (bit-identical) estimates at point-to-point cost.
    if (ChBatchExact(nodes.m, nodes.ra, nodes.rb, chargers, tau, out)) {
      return stats;
    }
    out->clear();
    const ChClassWeights weights = ChWeightsAt(*congestion_, tau);
    const double direct =
        nodes.m < num_nodes
            ? ChReturnCost(ch_query_.get(), *network_, nodes.m, nodes.ra,
                           nodes.rb, weights, cost, &ch_edges_)
            : kInfiniteCost;
    const double cruise = std::max(CruiseSpeed(tau), 1.0);
    for (ChargerRef charger : chargers) {
      const NodeId b = charger->node;
      const double to_b =
          nodes.m < num_nodes && b < num_nodes
              ? ChExactPathCost(ch_query_.get(), *network_, nodes.m, b,
                                weights, cost, SweepDirection::kForward,
                                &ch_edges_)
              : kInfiniteCost;
      if (!std::isfinite(to_b)) {
        out->push_back(UnreachableEstimate());
        continue;
      }
      const double back = ChReturnCost(ch_query_.get(), *network_, b,
                                       nodes.ra, nodes.rb, weights, cost,
                                       &ch_edges_);
      double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                     (std::isfinite(direct) ? direct : 0.0);
      extra = std::max(0.0, extra);
      DeroutingEstimate est;
      est.extra_distance_min_m = est.extra_distance_max_m = extra;
      est.eta_s = to_b / cruise;
      out->push_back(est);
    }
    return stats;
  }

  // One forward sweep covers every outbound leg: it stops as soon as all
  // distinct charger nodes are settled, instead of re-settling the inner
  // ball around m once per candidate. Invalid ids are skipped by the sweep
  // and read back as unreachable.
  std::vector<NodeId>& targets = scratch->targets;
  targets.clear();
  for (ChargerRef charger : chargers) targets.push_back(charger->node);
  if (nodes.m < num_nodes) {
    search_.OneToMany(nodes.m, std::span<const NodeId>(targets), cost);
  }

  // One backward extension covers every return leg plus the direct cost
  // (m is just one more target of the multi-source return sweep).
  stats.warm_start = EnsureBackwardSweep(nodes.ra, nodes.rb, tau);
  targets.push_back(nodes.m);
  back_search_.ExtendSweep(std::span<const NodeId>(targets), cost);
  targets.pop_back();
  const double direct =
      nodes.m < num_nodes ? back_search_.CostTo(nodes.m) : kInfiniteCost;

  const double cruise = std::max(CruiseSpeed(tau), 1.0);
  for (ChargerRef charger : chargers) {
    const NodeId b = charger->node;
    const double to_b = nodes.m < num_nodes && b < num_nodes
                            ? search_.CostTo(b)
                            : kInfiniteCost;
    if (!std::isfinite(to_b)) {
      out->push_back(UnreachableEstimate());
      continue;
    }
    const double back = back_search_.CostTo(b);
    double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                   (std::isfinite(direct) ? direct : 0.0);
    extra = std::max(0.0, extra);
    DeroutingEstimate est;
    est.extra_distance_min_m = est.extra_distance_max_m = extra;
    est.eta_s = to_b / cruise;
    out->push_back(est);
  }
  return stats;
}

bool DeroutingService::EtaWindow(const DeroutingQuery& query,
                                 const EvCharger& charger, size_t buckets,
                                 std::vector<double>* etas_s) {
  etas_s->clear();
  if (ch_ == nullptr || buckets == 0) return false;
  // Multi-bucket windows only mean something under time bucketing (lane j
  // IS bucket j); a single lane degenerates to the current cost time.
  if (buckets > 1 && exact_time_bucket_s_ <= 0.0) return false;
  const QueryNodes nodes = ResolveNodes(*network_, query);
  const size_t num_nodes = network_->NumNodes();
  if (nodes.m >= num_nodes || charger.node >= num_nodes) return false;
  const SimTime tau0 = ExactCostTime(query.now);

  // Window planes: the shared cache when attached (one worker's window
  // prewarms every other worker's bucket transitions), else the private
  // customizer seeded with the previous lane — consecutive buckets usually
  // differ in a few classes, so lanes 1..k-1 re-price incrementally.
  ch_planes_.clear();
  for (size_t j = 0; j < buckets; ++j) {
    const SimTime tau = tau0 + static_cast<double>(j) * exact_time_bucket_s_;
    const ChClassWeights weights = ChWeightsAt(*congestion_, tau);
    std::shared_ptr<const ChCustomization> plane;
    if (ch_cache_ != nullptr) {
      plane = ch_cache_->Get(weights);
    } else {
      if (ch_customizer_ == nullptr) {
        ch_customizer_ = std::make_unique<ChCustomizer>(*ch_, ch_threads_);
      }
      plane = ch_customizer_->CustomizeFrom(ch_last_plane_, weights);
      ch_last_plane_ = plane;
    }
    ch_planes_.push_back(std::move(plane));
  }

  if (ch_profile_ == nullptr) {
    ch_profile_ = std::make_unique<ChProfileQuery>(*ch_);
  }
  ch_profile_->SetPlanes(ch_planes_);
  ChProfileScratch& ps = *ch_profile_scratch_;
  if (!ch_profile_->BuildSpace(nodes.m, SweepDirection::kForward, &ps.m_fwd)) {
    return false;
  }
  if (!ch_profile_->BuildSpace(charger.node, SweepDirection::kBackward,
                               &ps.b_bwd)) {
    return false;
  }
  ps.dist.resize(buckets);
  ps.fpos.resize(buckets);
  ps.bpos.resize(buckets);
  ch_profile_->MeetSpaces(ps.m_fwd, ps.b_bwd, ps.dist, ps.fpos, ps.bpos);

  etas_s->resize(buckets);
  for (size_t j = 0; j < buckets; ++j) {
    if (!(ps.dist[j] < kInfiniteCost)) {
      (*etas_s)[j] = kInfiniteCost;
      continue;
    }
    ch_profile_->UnpackMeet(ps.m_fwd, ps.fpos[j], ps.b_bwd, ps.bpos[j], j,
                            &ch_edges_);
    // Refold lane j the way the reference forward sweep at tau_j would
    // have accumulated it, then convert to seconds — exactly Exact()'s
    // eta_s at that bucket.
    const SimTime tau = tau0 + static_cast<double>(j) * exact_time_bucket_s_;
    double acc = 0.0;
    for (EdgeId e : ch_edges_) {
      const Arc& arc = network_->arc(e);
      acc = acc + arc.length_m /
                      congestion_->ActualSpeedFactor(arc.road_class, tau);
    }
    (*etas_s)[j] = acc / std::max(CruiseSpeed(tau), 1.0);
  }
  return true;
}

}  // namespace ecocharge
