#include "traffic/derouting.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

DeroutingService::DeroutingService(
    std::shared_ptr<const RoadNetwork> network,
    const CongestionModel* congestion, double detour_factor,
    double exact_time_bucket_s)
    : network_(std::move(network)),
      congestion_(congestion),
      detour_factor_(detour_factor),
      exact_time_bucket_s_(exact_time_bucket_s),
      search_(*network_),
      back_search_(*network_) {}

double DeroutingService::CruiseSpeed(SimTime t) const {
  return FreeFlowSpeed(RoadClass::kArterial) *
         congestion_->ActualSpeedFactor(RoadClass::kArterial, t);
}

DeroutingEstimate DeroutingService::Estimate(const DeroutingQuery& query,
                                             const EvCharger& charger) const {
  return Estimate(query, charger,
                  congestion_->ForecastSpeedFactor(RoadClass::kArterial,
                                                   query.now, query.now));
}

DeroutingEstimate DeroutingService::Estimate(
    const DeroutingQuery& query, const EvCharger& charger,
    const CongestionModel::Band& band) const {
  double to_charger = Distance(query.vehicle_position, charger.position);
  double back = std::min(Distance(charger.position, query.return_point_a),
                         Distance(charger.position, query.return_point_b));
  double on_route =
      std::min(Distance(query.vehicle_position, query.return_point_a),
               Distance(query.vehicle_position, query.return_point_b));
  // Euclidean distances are admissible lower bounds on network distance;
  // the detour factor gives the typical upper estimate. The congestion
  // band converts "distance" into "effective cost distance" (congested
  // roads cost proportionally more time/energy).
  double optimistic = std::max(0.0, to_charger + back - on_route);
  double pessimistic =
      std::max(0.0, (to_charger + back) * detour_factor_ - on_route);
  DeroutingEstimate est;
  est.extra_distance_min_m = optimistic;
  // Slow traffic (band.min) inflates the effective pessimistic cost.
  est.extra_distance_max_m = pessimistic / std::max(band.min, 0.10);
  if (est.extra_distance_max_m < est.extra_distance_min_m) {
    est.extra_distance_max_m = est.extra_distance_min_m;
  }
  double speed = FreeFlowSpeed(RoadClass::kArterial) *
                 (band.min + band.max) * 0.5;
  est.eta_s = to_charger * detour_factor_ / std::max(speed, 1.0);
  return est;
}

SimTime DeroutingService::ExactCostTime(SimTime now) const {
  if (exact_time_bucket_s_ <= 0.0) return now;
  return std::floor(now / exact_time_bucket_s_) * exact_time_bucket_s_;
}

bool DeroutingService::EnsureBackwardSweep(NodeId ra, NodeId rb,
                                           SimTime tau) {
  BackwardKey key{ra, rb, tau};
  if (key == back_key_) {
    ++warm_start_hits_;
    return true;
  }
  // Multi-source seed: both return points at cost 0, so the sweep settles
  // min(d(v -> r_a), d(v -> r_b)) for every v it reaches — the "whichever
  // return point deroutes less" minimum, for all chargers at once.
  NodeId sources[2] = {ra, rb};
  back_search_.StartSweep(std::span<const NodeId>(sources, 2),
                          SweepDirection::kBackward);
  back_key_ = key;
  ++backward_sweep_starts_;
  return false;
}

namespace {

/// Resolved node triple of one derouting query.
struct QueryNodes {
  NodeId m;
  NodeId ra;
  NodeId rb;
};

QueryNodes ResolveNodes(const RoadNetwork& network,
                        const DeroutingQuery& query) {
  QueryNodes nodes;
  nodes.m = query.vehicle_node != kInvalidNode
                ? query.vehicle_node
                : network.NearestNode(query.vehicle_position);
  nodes.ra = query.return_node_a != kInvalidNode
                 ? query.return_node_a
                 : network.NearestNode(query.return_point_a);
  nodes.rb = query.return_node_b != kInvalidNode
                 ? query.return_node_b
                 : network.NearestNode(query.return_point_b);
  return nodes;
}

DeroutingEstimate UnreachableEstimate() {
  DeroutingEstimate est;
  est.extra_distance_min_m = est.extra_distance_max_m = kInfiniteCost;
  est.eta_s = kInfiniteCost;
  return est;
}

}  // namespace

DeroutingEstimate DeroutingService::Exact(const DeroutingQuery& query,
                                          const EvCharger& charger) {
  const QueryNodes nodes = ResolveNodes(*network_, query);
  const size_t num_nodes = network_->NumNodes();
  if (nodes.m >= num_nodes || charger.node >= num_nodes) {
    return UnreachableEstimate();
  }

  // Cost = congested travel distance: length / speed_factor(class, tau),
  // i.e. congested roads count longer, matching Eq. 3's weighted edges.
  // tau is the (possibly bucketed) cost time, shared with ExactBatch so
  // both fidelities accumulate the same doubles.
  const SimTime tau = ExactCostTime(query.now);
  auto cost = [this, tau](const Arc& e) {
    return e.length_m /
           congestion_->ActualSpeedFactor(e.road_class, tau);
  };

  // Outbound leg: single-target forward sweep (stops at the charger).
  NodeId fwd_targets[1] = {charger.node};
  search_.OneToMany(nodes.m, std::span<const NodeId>(fwd_targets, 1), cost);
  const double to_b = search_.CostTo(charger.node);
  if (!std::isfinite(to_b)) return UnreachableEstimate();

  // Return leg + direct cost from the shared backward sweep: extending to
  // {b, m} settles min(d(b -> r_a), d(b -> r_b)) and the on-route cost
  // d(m -> {r_a, r_b}) in one pass.
  EnsureBackwardSweep(nodes.ra, nodes.rb, tau);
  NodeId back_targets[2] = {charger.node, nodes.m};
  back_search_.ExtendSweep(std::span<const NodeId>(back_targets, 2), cost);
  const double back = back_search_.CostTo(charger.node);
  const double direct = back_search_.CostTo(nodes.m);

  double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                 (std::isfinite(direct) ? direct : 0.0);
  extra = std::max(0.0, extra);
  DeroutingEstimate est;
  est.extra_distance_min_m = est.extra_distance_max_m = extra;
  est.eta_s = to_b / std::max(CruiseSpeed(tau), 1.0);
  return est;
}

BatchSweepStats DeroutingService::ExactBatch(
    const DeroutingQuery& query, std::span<const ChargerRef> chargers,
    DeroutingBatchScratch* scratch, std::vector<DeroutingEstimate>* out) {
  BatchSweepStats stats;
  stats.targets = chargers.size();
  out->clear();
  if (chargers.empty()) return stats;

  const QueryNodes nodes = ResolveNodes(*network_, query);
  const size_t num_nodes = network_->NumNodes();
  const SimTime tau = ExactCostTime(query.now);
  auto cost = [this, tau](const Arc& e) {
    return e.length_m /
           congestion_->ActualSpeedFactor(e.road_class, tau);
  };

  // One forward sweep covers every outbound leg: it stops as soon as all
  // distinct charger nodes are settled, instead of re-settling the inner
  // ball around m once per candidate. Invalid ids are skipped by the sweep
  // and read back as unreachable.
  std::vector<NodeId>& targets = scratch->targets;
  targets.clear();
  for (ChargerRef charger : chargers) targets.push_back(charger->node);
  if (nodes.m < num_nodes) {
    search_.OneToMany(nodes.m, std::span<const NodeId>(targets), cost);
  }

  // One backward extension covers every return leg plus the direct cost
  // (m is just one more target of the multi-source return sweep).
  stats.warm_start = EnsureBackwardSweep(nodes.ra, nodes.rb, tau);
  targets.push_back(nodes.m);
  back_search_.ExtendSweep(std::span<const NodeId>(targets), cost);
  targets.pop_back();
  const double direct =
      nodes.m < num_nodes ? back_search_.CostTo(nodes.m) : kInfiniteCost;

  const double cruise = std::max(CruiseSpeed(tau), 1.0);
  for (ChargerRef charger : chargers) {
    const NodeId b = charger->node;
    const double to_b = nodes.m < num_nodes && b < num_nodes
                            ? search_.CostTo(b)
                            : kInfiniteCost;
    if (!std::isfinite(to_b)) {
      out->push_back(UnreachableEstimate());
      continue;
    }
    const double back = back_search_.CostTo(b);
    double extra = to_b + (std::isfinite(back) ? back : 0.0) -
                   (std::isfinite(direct) ? direct : 0.0);
    extra = std::max(0.0, extra);
    DeroutingEstimate est;
    est.extra_distance_min_m = est.extra_distance_max_m = extra;
    est.eta_s = to_b / cruise;
    out->push_back(est);
  }
  return stats;
}

}  // namespace ecocharge
