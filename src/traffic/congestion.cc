#include "traffic/congestion.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ecocharge {

CongestionModel::CongestionModel(uint64_t seed) : seed_(seed) {}

namespace {

double Bump(double hour, double peak, double sigma) {
  double d = hour - peak;
  return std::exp(-d * d / (2.0 * sigma * sigma));
}

/// How strongly a road class reacts to rush hour (1 = full effect).
double ClassSensitivity(RoadClass rc) {
  switch (rc) {
    case RoadClass::kHighway:
      return 1.0;
    case RoadClass::kArterial:
      return 0.85;
    case RoadClass::kLocal:
      return 0.45;
  }
  return 0.5;
}

}  // namespace

double CongestionModel::ExpectedSpeedFactor(RoadClass road_class,
                                            SimTime t) const {
  double hour = HourOfDay(t);
  bool weekend = DayOfWeek(t) >= 5;
  double rush = Bump(hour, 8.0, 1.2) + Bump(hour, 17.5, 1.6);
  if (weekend) rush *= 0.3;
  double drop = 0.55 * ClassSensitivity(road_class) * std::min(rush, 1.0);
  return std::clamp(1.0 - drop, kMinSpeedFactor, 1.0);
}

double CongestionModel::ActualSpeedFactor(RoadClass road_class,
                                          SimTime t) const {
  uint64_t hour = static_cast<uint64_t>(std::max(0.0, t) / kSecondsPerHour);
  Rng noise(seed_ ^ hour * 0x9E3779B97F4A7C15ULL ^
            (static_cast<uint64_t>(road_class) + 1) * 0xBF58476D1CE4E5B9ULL);
  double factor =
      ExpectedSpeedFactor(road_class, t) * (1.0 + noise.NextGaussian(0.0, 0.08));
  return std::clamp(factor, kMinSpeedFactor, 1.0);
}

CongestionModel::Band CongestionModel::ForecastSpeedFactor(
    RoadClass road_class, SimTime now, SimTime target) const {
  double actual = ActualSpeedFactor(road_class, target);
  double lead_hours = std::max(0.0, target - now) / kSecondsPerHour;
  double half = 0.06 + 0.03 * std::min(lead_hours, 6.0);
  uint64_t now_h = static_cast<uint64_t>(std::max(0.0, now) / kSecondsPerHour);
  uint64_t tgt_h =
      static_cast<uint64_t>(std::max(0.0, target) / kSecondsPerHour);
  Rng noise(seed_ ^ now_h * 0xA0761D6478BD642FULL ^
            tgt_h * 0xE7037ED1A0B428DBULL ^
            (static_cast<uint64_t>(road_class) + 1) * 0x8EBC6AF09C88C6E3ULL);
  double center = actual + noise.NextGaussian(0.0, half * 0.3);
  Band band;
  band.min = std::clamp(center - half, 0.10, 1.0);
  band.max = std::clamp(center + half, 0.10, 1.0);
  if (band.min > band.max) std::swap(band.min, band.max);
  return band;
}

}  // namespace ecocharge
