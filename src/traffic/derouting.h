#ifndef ECOCHARGE_TRAFFIC_DEROUTING_H_
#define ECOCHARGE_TRAFFIC_DEROUTING_H_

#include <memory>

#include "energy/charger.h"
#include "graph/shortest_path.h"
#include "traffic/congestion.h"

namespace ecocharge {

/// \brief The derouting estimated component D for one charger.
///
/// Extra distance = d(m -> b) + min(d(b -> r_i), d(b -> r_{i+1})) minus the
/// on-route distance the vehicle would have covered anyway — the paper's
/// "reach the charger and return to the scheduled trip, whichever return
/// point deroutes less". eta_s is the estimated drive time m -> b, which
/// anchors the L and A forecasts.
struct DeroutingEstimate {
  double extra_distance_min_m = 0.0;  ///< optimistic (clear traffic) bound
  double extra_distance_max_m = 0.0;  ///< pessimistic bound
  double eta_s = 0.0;                 ///< estimated time of arrival at b
};

/// \brief Vehicle-side query context for derouting computations.
struct DeroutingQuery {
  Point vehicle_position;
  NodeId vehicle_node = kInvalidNode;  ///< snap of vehicle_position
  Point return_point_a;                ///< end of current segment p_i
  Point return_point_b;                ///< end of next segment p_{i+1}
  NodeId return_node_a = kInvalidNode;
  NodeId return_node_b = kInvalidNode;
  SimTime now = 0.0;
};

/// \brief Computes derouting costs in two fidelities.
///
/// Estimate(): closed-form from Euclidean distances x a road-detour factor
/// x the congestion band — O(1) per charger, used by the CkNN-EC filtering
/// phase. Exact(): time-aware A* over the network — used by the refinement
/// phase and by the Brute-Force oracle (this is where the baselines spend
/// their CPU time, matching the paper's cost profile).
class DeroutingService {
 public:
  /// \param detour_factor typical network/Euclidean distance ratio (~1.3)
  DeroutingService(std::shared_ptr<const RoadNetwork> network,
                   const CongestionModel* congestion,
                   double detour_factor = 1.3);

  /// O(1) interval estimate; fetches the congestion band itself.
  DeroutingEstimate Estimate(const DeroutingQuery& query,
                             const EvCharger& charger) const;

  /// O(1) interval estimate with a caller-provided congestion band (the
  /// EC estimator passes the EIS-cached band so the architecture's traffic
  /// API is exercised).
  DeroutingEstimate Estimate(const DeroutingQuery& query,
                             const EvCharger& charger,
                             const CongestionModel::Band& band) const;

  /// Network-exact cost under realized traffic (min == max).
  DeroutingEstimate Exact(const DeroutingQuery& query,
                          const EvCharger& charger);

  /// Cruise speed used to turn distances into ETAs, m/s (arterial pace
  /// scaled by current congestion).
  double CruiseSpeed(SimTime t) const;

  const RoadNetwork& network() const { return *network_; }

 private:
  double DirectCost(NodeId m, NodeId ra, NodeId rb, SimTime now,
                    const EdgeCostFn& cost);

  std::shared_ptr<const RoadNetwork> network_;
  const CongestionModel* congestion_;
  double detour_factor_;
  DijkstraSearch search_;

  // Memo for the charger-independent on-route cost d(m -> {r_a, r_b});
  // Brute-Force evaluates every charger under the same vehicle state, so
  // this turns 2 of the 5 A* runs per charger into 2 per query.
  struct DirectKey {
    NodeId m = kInvalidNode;
    NodeId ra = kInvalidNode;
    NodeId rb = kInvalidNode;
    SimTime now = -1.0;
    bool operator==(const DirectKey&) const = default;
  };
  DirectKey direct_key_;
  double direct_cost_ = 0.0;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAFFIC_DEROUTING_H_
