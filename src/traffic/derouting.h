#ifndef ECOCHARGE_TRAFFIC_DEROUTING_H_
#define ECOCHARGE_TRAFFIC_DEROUTING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "energy/charger.h"
#include "graph/shortest_path.h"
#include "traffic/congestion.h"

namespace ecocharge {

class ChIndex;
class ChQuery;
class ChCustomizer;
class ChCustomizationCache;
class ChProfileQuery;
struct ChCustomization;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Which engine answers exact derouting queries.
///
/// kExact runs the PR 5 Dijkstra batch sweeps (the parity oracle); kCh
/// answers point-to-point legs over a contraction hierarchy and refolds
/// each unpacked path in the oracle's accumulation order, so both backends
/// emit bit-identical estimates.
enum class DeroutingBackend : uint8_t {
  kExact = 0,
  kCh = 1,
};

/// \brief The derouting estimated component D for one charger.
///
/// Extra distance = d(m -> b) + min(d(b -> r_i), d(b -> r_{i+1})) minus the
/// on-route distance the vehicle would have covered anyway — the paper's
/// "reach the charger and return to the scheduled trip, whichever return
/// point deroutes less". eta_s is the estimated drive time m -> b, which
/// anchors the L and A forecasts.
struct DeroutingEstimate {
  double extra_distance_min_m = 0.0;  ///< optimistic (clear traffic) bound
  double extra_distance_max_m = 0.0;  ///< pessimistic bound
  double eta_s = 0.0;                 ///< estimated time of arrival at b
};

/// \brief Vehicle-side query context for derouting computations.
struct DeroutingQuery {
  Point vehicle_position;
  NodeId vehicle_node = kInvalidNode;  ///< snap of vehicle_position
  Point return_point_a;                ///< end of current segment p_i
  Point return_point_b;                ///< end of next segment p_{i+1}
  NodeId return_node_a = kInvalidNode;
  NodeId return_node_b = kInvalidNode;
  SimTime now = 0.0;
};

/// Handle to one refinement candidate in a batched exact call: a borrowed
/// fleet entry (the fleet vector outlives every query).
using ChargerRef = const EvCharger*;

/// \brief Reusable scratch of the batched exact-derouting path.
///
/// Owned by the caller (the query pipeline keeps one inside QueryContext,
/// the serving runtime pre-sizes one per worker), so a warm ExactBatch
/// performs zero heap allocations. The refine_order/bounds buffers are the
/// pipeline's candidate-ordering scratch (ALT lower bounds), kept here so
/// all batched-refinement scratch lives in one place.
struct DeroutingBatchScratch {
  std::vector<NodeId> targets;               ///< batch target node ids
  std::vector<ChargerRef> chargers;          ///< caller-side batch staging
  std::vector<DeroutingEstimate> estimates;  ///< batch output
  std::vector<uint32_t> refine_order;        ///< candidate-ordering scratch
  std::vector<double> bounds;                ///< ALT lower-bound scratch

  /// Pre-grows every buffer to `n` candidates (+1 for the direct-cost
  /// target) so the first batch is already allocation-free.
  void Reserve(size_t n) {
    targets.reserve(n + 1);
    chargers.reserve(n);
    estimates.reserve(n);
    refine_order.reserve(n);
    bounds.reserve(n);
  }
};

/// \brief What one ExactBatch call did — feeds the pipeline.batch_* and
/// warm-start metrics.
struct BatchSweepStats {
  size_t targets = 0;       ///< chargers in the batch
  bool warm_start = false;  ///< the backward sweep was resumed, not rebuilt
};

/// \brief Computes derouting costs in two fidelities.
///
/// Estimate(): closed-form from Euclidean distances x a road-detour factor
/// x the congestion band — O(1) per charger, used by the CkNN-EC filtering
/// phase. Exact()/ExactBatch(): time-aware Dijkstra sweeps over the network
/// — used by the refinement phase and by the Brute-Force oracle (this is
/// where the baselines spend their CPU time, matching the paper's cost
/// profile).
///
/// The exact path decomposes into one forward sweep from the vehicle node
/// (outbound legs d(m -> b)) and one backward sweep over the in-adjacency
/// seeded from both return points (return legs min d(b -> r_i) for every
/// charger, plus the on-route direct cost d(m -> {r_a, r_b}) for free at
/// the vehicle node). The backward sweep is resumable and memoized on
/// (r_a, r_b, cost time): Brute-Force loops, the batched refinement, and
/// the recomputation points of a continuous query all reuse its settled
/// costs instead of re-running it per charger. Exact() and ExactBatch()
/// share the same sweep primitives and therefore produce bit-identical
/// costs — a batch is exactly N per-candidate calls fused.
class DeroutingService {
 public:
  /// \param detour_factor typical network/Euclidean distance ratio (~1.3)
  /// \param exact_time_bucket_s when > 0, exact costs are computed at
  ///        `now` quantized down to this bucket, so every query inside one
  ///        bucket shares edge costs — the cross-segment warm-start. 0
  ///        (default) evaluates at the query's exact `now`. The natural
  ///        bucket is CongestionModel::kNoiseBucketSeconds.
  DeroutingService(std::shared_ptr<const RoadNetwork> network,
                   const CongestionModel* congestion,
                   double detour_factor = 1.3,
                   double exact_time_bucket_s = 0.0);
  ~DeroutingService();

  /// O(1) interval estimate; fetches the congestion band itself.
  DeroutingEstimate Estimate(const DeroutingQuery& query,
                             const EvCharger& charger) const;

  /// O(1) interval estimate with a caller-provided congestion band (the
  /// EC estimator passes the EIS-cached band so the architecture's traffic
  /// API is exercised).
  DeroutingEstimate Estimate(const DeroutingQuery& query,
                             const EvCharger& charger,
                             const CongestionModel::Band& band) const;

  /// Network-exact cost under realized traffic (min == max).
  DeroutingEstimate Exact(const DeroutingQuery& query,
                          const EvCharger& charger);

  /// Batched form of Exact(): one forward multi-target sweep covers every
  /// charger's outbound leg, one (possibly warm) backward extension covers
  /// every return leg and the direct cost. Appends one estimate per
  /// charger to `*out` in input order, bit-identical to calling Exact()
  /// per charger. `scratch` supplies the target buffer (typically
  /// `&scratch->estimates` is passed as `out`); a warm call allocates
  /// nothing.
  BatchSweepStats ExactBatch(const DeroutingQuery& query,
                             std::span<const ChargerRef> chargers,
                             DeroutingBatchScratch* scratch,
                             std::vector<DeroutingEstimate>* out);

  /// Cruise speed used to turn distances into ETAs, m/s (arterial pace
  /// scaled by current congestion).
  double CruiseSpeed(SimTime t) const;

  /// Changes the exact-cost time bucket; resets the warm-start memo (costs
  /// computed under a different bucket are not comparable).
  void set_exact_time_bucket_s(double bucket_s) {
    exact_time_bucket_s_ = bucket_s;
    back_key_ = BackwardKey{};
  }
  double exact_time_bucket_s() const { return exact_time_bucket_s_; }

  /// Cumulative backward-sweep accounting: how many exact calls reused the
  /// settled backward costs vs. rebuilding them. Warm hits require the same
  /// return pair at the same (bucketed) cost time.
  uint64_t warm_start_hits() const { return warm_start_hits_; }
  uint64_t backward_sweep_starts() const { return backward_sweep_starts_; }

  /// Switches Exact()/ExactBatch() to the contraction-hierarchy backend.
  /// `ch` must be built over this service's network and outlive it; nullptr
  /// reverts to the Dijkstra sweeps. The CH backend does not use the
  /// backward-sweep memo, so warm-start counters stay flat under it.
  ///
  /// `cache` (optional, must outlive the service) makes this worker source
  /// customized planes from the process-shared ChCustomizationCache
  /// instead of pricing privately — N workers then customize a congestion
  /// bucket once total. `threads` is the sweep parallelism of the private
  /// customizer when no cache is given (0 = serial seed path; ignored with
  /// a cache, whose own customizer decides).
  void set_ch(const ChIndex* ch, ChCustomizationCache* cache = nullptr,
              int threads = 0);

  /// \brief Profile (ETA-window) query: the estimated drive time from the
  /// vehicle to `charger` under `buckets` consecutive congestion-bucket
  /// weight planes, in one elimination-tree search.
  ///
  /// `(*etas_s)[j]` equals the `eta_s` an exact CH call evaluated at
  /// `ExactCostTime(query.now) + j * exact_time_bucket_s()` would produce
  /// (bit-identical: per-lane labels, unpacked paths, and oracle-order
  /// refolds match the single-plane path), kInfiniteCost where
  /// unreachable. Returns false — leaving `*etas_s` empty — when the CH
  /// backend is off, `buckets` is 0, multi-bucket windows are requested
  /// without time bucketing, a node is out of range, or the hierarchy
  /// rejects the space builder; callers fall back to per-bucket Exact().
  bool EtaWindow(const DeroutingQuery& query, const EvCharger& charger,
                 size_t buckets, std::vector<double>* etas_s);

  /// Mirrors this worker's customization sweeps onto `registry`
  /// (`ch.customizations`); survives set_ch. Null detaches.
  void AttachChMetrics(obs::MetricsRegistry* registry);
  const ChIndex* ch() const { return ch_; }
  DeroutingBackend backend() const {
    return ch_ != nullptr ? DeroutingBackend::kCh : DeroutingBackend::kExact;
  }

  const RoadNetwork& network() const { return *network_; }

 private:
  /// The time exact edge costs are evaluated at: `now`, or `now` floored
  /// to the bucket when warm-start bucketing is on.
  SimTime ExactCostTime(SimTime now) const;

  /// Resumes (warm hit) or restarts the backward sweep for the return pair
  /// at cost time `tau`; returns true on a warm hit.
  bool EnsureBackwardSweep(NodeId ra, NodeId rb, SimTime tau);

  /// Space-sharing CH batch: builds the vehicle/return elimination-tree
  /// spaces once and meets each charger's two spaces against them. Returns
  /// false (with `*out` cleared) when the hierarchy rejects the space
  /// builder; ExactBatch then falls back to per-leg bidirectional searches.
  bool ChBatchExact(NodeId m, NodeId ra, NodeId rb,
                    std::span<const ChargerRef> chargers, SimTime tau,
                    std::vector<DeroutingEstimate>* out);

  std::shared_ptr<const RoadNetwork> network_;
  const CongestionModel* congestion_;
  double detour_factor_;
  double exact_time_bucket_s_;
  DijkstraSearch search_;       ///< forward sweeps (outbound legs)
  DijkstraSearch back_search_;  ///< resumable backward sweep (return legs)

  // Warm-start memo: the backward sweep is valid while the return pair and
  // the (bucketed) cost time are unchanged. Settled costs persist inside
  // back_search_'s epoch; invalidation is just a key mismatch, which
  // happens exactly at time-bucket boundaries on a continuous run.
  struct BackwardKey {
    NodeId ra = kInvalidNode;
    NodeId rb = kInvalidNode;
    SimTime tau = -1.0;
    bool operator==(const BackwardKey&) const = default;
  };
  BackwardKey back_key_;
  uint64_t warm_start_hits_ = 0;
  uint64_t backward_sweep_starts_ = 0;

  // CH backend state: borrowed hierarchy, its reusable query workspace, the
  // unpacked-edge scratch shared by every CH leg, and the batch's
  // elimination-tree label spaces (vehicle/return spaces built once per
  // batch, two per-charger spaces reused across the loop).
  const ChIndex* ch_ = nullptr;
  std::unique_ptr<ChQuery> ch_query_;
  std::vector<EdgeId> ch_edges_;
  struct ChBatchSpaces;
  std::unique_ptr<ChBatchSpaces> ch_spaces_;

  // Customization sourcing: the shared cache when attached, else a lazy
  // private customizer seeded with the last built plane (so consecutive
  // window buckets re-price incrementally). ch_metrics_ is re-applied to
  // the query workspace on every set_ch.
  ChCustomizationCache* ch_cache_ = nullptr;
  int ch_threads_ = 0;
  std::unique_ptr<ChCustomizer> ch_customizer_;
  std::shared_ptr<const ChCustomization> ch_last_plane_;
  obs::MetricsRegistry* ch_metrics_ = nullptr;

  // Profile-query state: the window's plane lanes plus the two reusable
  // multi-lane spaces and per-lane meet scratch.
  std::unique_ptr<ChProfileQuery> ch_profile_;
  std::vector<std::shared_ptr<const ChCustomization>> ch_planes_;
  struct ChProfileScratch;
  std::unique_ptr<ChProfileScratch> ch_profile_scratch_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAFFIC_DEROUTING_H_
