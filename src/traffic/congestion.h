#ifndef ECOCHARGE_TRAFFIC_CONGESTION_H_
#define ECOCHARGE_TRAFFIC_CONGESTION_H_

#include <cstdint>

#include "common/simtime.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief Time-of-day traffic model.
///
/// Produces a speed factor in (0, 1]: the fraction of free-flow speed
/// actually achievable on a road class at a given time. Weekday rush hours
/// (7-9, 16-19) depress highways and arterials most; weekends are mild.
/// The realized factor adds deterministic per-hour noise around the
/// profile; forecasts return a band that widens with lead time — the D
/// estimated component's uncertainty source.
///
/// Thread safety: every method is const and a pure function of (seed_,
/// inputs) — the model holds no mutable state, so concurrent reads from
/// the serving workers need no synchronization.
class CongestionModel {
 public:
  /// Width of the realized-factor noise buckets: ActualSpeedFactor's noise
  /// term is seeded per hour, so costs quantized to this bucket stay inside
  /// one noise regime. The derouting warm-start memo uses it as the natural
  /// invalidation boundary for reusing settled sweep costs across the
  /// recomputation points of a continuous query.
  static constexpr double kNoiseBucketSeconds = kSecondsPerHour;

  /// Hard floor of the realized speed factor: ActualSpeedFactor clamps to
  /// [kMinSpeedFactor, 1], so every derouting class weight lies in
  /// [1, 1/kMinSpeedFactor].
  static constexpr double kMinSpeedFactor = 0.15;

  explicit CongestionModel(uint64_t seed);

  /// The deterministic diurnal profile (no noise).
  double ExpectedSpeedFactor(RoadClass road_class, SimTime t) const;

  /// Realized factor: profile x noise(seed, class, hour), clamped to
  /// [0.15, 1].
  double ActualSpeedFactor(RoadClass road_class, SimTime t) const;

  /// \brief Min/max band on the speed factor.
  struct Band {
    double min = 0.15;
    double max = 1.0;
  };

  /// Forecast band issued at `now` for `target`; pure in its inputs.
  Band ForecastSpeedFactor(RoadClass road_class, SimTime now,
                           SimTime target) const;

 private:
  uint64_t seed_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAFFIC_CONGESTION_H_
