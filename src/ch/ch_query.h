#ifndef ECOCHARGE_CH_CH_QUERY_H_
#define ECOCHARGE_CH_CH_QUERY_H_

#include <cstdint>
#include <vector>

#include "ch/ch_index.h"
#include "graph/shortest_path.h"

namespace ecocharge {

/// \brief Per-class weights of one query instant.
///
/// The derouting metric at time tau prices an edge at
/// `length / speed_factor(road_class, tau)` — three multipliers, one per
/// RoadClass. The traffic layer builds these from its congestion model;
/// `kChLengthWeights` is the uniform (pure length) metric used for
/// lower-bound ordering queries.
struct ChClassWeights {
  double w[kChNumClasses] = {1.0, 1.0, 1.0};
};

inline constexpr ChClassWeights kChLengthWeights{};

/// \brief One endpoint's elimination-tree label space.
///
/// `chain` lists the endpoint and its elimination-tree ancestors in
/// ascending rank; `dist[i]` / `pred_*[i]` describe the cheapest up-graph
/// (forward) or reversed-down-graph (backward) path from the endpoint to
/// `chain[i]` under the active customization. Spaces are position-indexed
/// and self-contained, so several can be alive at once — a derouting batch
/// builds the vehicle and return-point spaces once and meets every
/// candidate charger's two small spaces against them.
struct ChSpace {
  std::vector<NodeId> chain;
  std::vector<double> dist;
  std::vector<uint32_t> pred_arc;  ///< packed ChIndex ref; kNoArcRef at seed
  std::vector<uint32_t> pred_pos;  ///< chain index of the predecessor
  NodeId source = kInvalidNode;
  bool forward = true;
};

/// \brief Reusable bidirectional up/down query workspace over one ChIndex.
///
/// The hierarchy's topology is metric-independent, so each ChQuery owns a
/// *customization* of it: per-arc costs under one class-weight vector plus
/// the middle node realizing each shortcut. Customize() is a single
/// bottom-up sweep over the triangle closure (process nodes by ascending
/// rank; for every down-arc (a -> x) and up-arc (x -> b) relax the enclosing
/// arc (a -> b)); Search() re-customizes only when the weights actually
/// change, so a query stream at a fixed traffic bucket pays it once.
///
/// Search(): upward Dijkstra from s over UpArcs and downward Dijkstra from
/// t over DownArcs with stall-on-demand, meeting at the hierarchy peak.
/// Labels are epoch-stamped like DijkstraSearch, so a warm query allocates
/// nothing and costs O(visited) to reset.
///
/// The customized costs pick the argmin path; callers needing costs that
/// are bit-identical to a plain Dijkstra over the original graph recompute
/// them over the unpacked original-edge path (ChExactPathCost) — float sums
/// depend on association order, so the winning path is re-accumulated
/// exactly the way the reference sweep would have.
class ChQuery {
 public:
  /// Sentinel arc reference marking a search seed / original-arc leaf.
  static constexpr uint32_t kNoArcRef = 0xFFFFFFFFu;

  explicit ChQuery(const ChIndex& ch);

  /// Prices the hierarchy for `weights` if the current customization does
  /// not already match. Search() calls this implicitly.
  void EnsureCustomized(const ChClassWeights& weights);

  /// Shortest up-down distance s -> t under `weights`; kInfiniteCost when
  /// unreachable, exactly 0.0 when s == t. Out-of-range ids are
  /// unreachable. Keeps meeting state for UnpackPath().
  double Search(NodeId s, NodeId t, const ChClassWeights& weights);

  /// Appends the last successful Search()'s path as original EdgeIds in
  /// forward (s -> t) order. Empty for s == t. Must not be called after an
  /// unreachable Search.
  void UnpackPath(std::vector<EdgeId>* out);

  /// Builds the elimination-tree label space of `v` under the current
  /// customization (EnsureCustomized must have run; `v` must be in range).
  /// kForward prices v -> ancestor up-paths, kBackward ancestor -> v
  /// down-paths. No priority queue and no stall scans: ancestors are
  /// relaxed in chain order, which is topological for both climb
  /// directions. Returns false — leaving `out` unusable — if an arc ever
  /// leaves the ancestor chain, i.e. the index was not built by a
  /// contraction whose fill is closed over the arcs it kept; callers fall
  /// back to Search() in that case.
  bool BuildSpace(NodeId v, SweepDirection dir, ChSpace* out);

  /// Cheapest customized connection of a forward and a backward space over
  /// their common elimination-tree suffix. Writes the meet's chain
  /// positions and returns kInfiniteCost when the spaces never connect.
  double MeetSpaces(const ChSpace& fwd, const ChSpace& bwd, uint32_t* fpos,
                    uint32_t* bpos) const;

  /// Unpacks the connection found by MeetSpaces into original EdgeIds in
  /// forward (fwd.source -> bwd.source) order. Empty when the sources
  /// coincide.
  void UnpackMeet(const ChSpace& fwd, uint32_t fpos, const ChSpace& bwd,
                  uint32_t bpos, std::vector<EdgeId>* out);

  /// Heap pops of the last Search (exposed for benchmarks).
  size_t last_settled() const { return last_settled_; }

  /// Customization sweeps run so far (tests assert a stable query stream
  /// prices the hierarchy exactly once).
  size_t customizations() const { return customizations_; }

  const ChIndex& index() const { return ch_; }

 private:
  struct Label {
    double dist;
    uint32_t parent_arc;  // packed ChIndex ref of the relaxed arc
    NodeId parent_node;   // node the arc was relaxed from
    uint32_t version;
  };

  struct HeapEntry {
    double priority;
    NodeId node;
  };
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    return a.priority > b.priority;
  }

  struct UnpackItem {
    uint32_t ref;  // packed arc reference
    NodeId from;   // arc tail in forward orientation
    NodeId to;     // arc head
  };

  void Customize(const ChClassWeights& weights);
  void EnsureElimTree();

  double CwByRef(uint32_t ref) const {
    return (ref & ChIndex::kDownBit) != 0
               ? cw_down_[ref & ~ChIndex::kDownBit]
               : cw_up_[ref];
  }
  NodeId ViaByRef(uint32_t ref) const {
    return (ref & ChIndex::kDownBit) != 0
               ? via_down_[ref & ~ChIndex::kDownBit]
               : via_up_[ref];
  }
  /// Cheapest record of the (possibly parallel) run `v -> to` in v's up
  /// row / `from -> v` in v's down row; ties break on the first record.
  uint32_t MinUpRef(NodeId v, NodeId to) const;
  uint32_t MinDownRef(NodeId v, NodeId from) const;

  void ExpandItem(const UnpackItem& item, std::vector<EdgeId>* out);

  const ChIndex& ch_;

  // Customization state (valid when customizations_ > 0).
  ChClassWeights weights_;
  bool have_weights_ = false;
  size_t customizations_ = 0;
  std::vector<double> cw_up_;
  std::vector<double> cw_down_;
  std::vector<NodeId> via_up_;    // kInvalidNode = original arc is cheapest
  std::vector<NodeId> via_down_;
  std::vector<NodeId> order_;     // rank -> node (built once)

  std::vector<Label> flabel_;
  std::vector<Label> blabel_;
  std::vector<uint32_t> fsettled_;
  std::vector<uint32_t> bsettled_;
  std::vector<HeapEntry> fheap_;
  std::vector<HeapEntry> bheap_;
  std::vector<UnpackItem> unpack_stack_;
  std::vector<UnpackItem> path_items_;
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  // Elimination tree (built lazily, metric-independent) and the chain
  // position scratch BuildSpace stamps per call.
  std::vector<NodeId> parent_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> pos_stamp_;
  uint32_t space_epoch_ = 0;

  // Meeting state of the last Search.
  NodeId last_s_ = kInvalidNode;
  NodeId last_t_ = kInvalidNode;
  NodeId meet_ = kInvalidNode;
};

/// Exact congested cost of the shortest s -> t path, folded over the
/// unpacked original edges in the accumulation order of the reference
/// Dijkstra sweeps: a forward sweep folds source-to-target, a backward
/// (in-adjacency) sweep folds target-side-first. `cost` must be the same
/// functor the reference sweep would use; `scratch` holds the unpacked
/// edges between calls so a warm call allocates nothing. Returns
/// kInfiniteCost when unreachable and exactly 0.0 when s == t.
double ChExactPathCost(ChQuery* query, const RoadNetwork& network, NodeId s,
                       NodeId t, const ChClassWeights& weights,
                       const EdgeCostFn& cost, SweepDirection fold,
                       std::vector<EdgeId>* scratch);

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CH_QUERY_H_
