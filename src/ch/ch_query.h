#ifndef ECOCHARGE_CH_CH_QUERY_H_
#define ECOCHARGE_CH_CH_QUERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ch/ch_customize.h"
#include "ch/ch_index.h"
#include "graph/shortest_path.h"

namespace ecocharge {

/// \brief One endpoint's elimination-tree label space.
///
/// `chain` lists the endpoint and its elimination-tree ancestors in
/// ascending rank; `dist[i]` / `pred_*[i]` describe the cheapest up-graph
/// (forward) or reversed-down-graph (backward) path from the endpoint to
/// `chain[i]` under the active customization. Spaces are position-indexed
/// and self-contained, so several can be alive at once — a derouting batch
/// builds the vehicle and return-point spaces once and meets every
/// candidate charger's two small spaces against them.
struct ChSpace {
  std::vector<NodeId> chain;
  std::vector<double> dist;
  std::vector<uint32_t> pred_arc;  ///< packed ChIndex ref; kNoArcRef at seed
  std::vector<uint32_t> pred_pos;  ///< chain index of the predecessor
  NodeId source = kInvalidNode;
  bool forward = true;
};

/// \brief Reusable bidirectional up/down query workspace over one ChIndex.
///
/// The hierarchy's topology is metric-independent; what a query needs per
/// class-weight vector is a ChCustomization *plane* (per-arc costs plus the
/// middle node realizing each shortcut). Planes come from one of two
/// places: a shared ChCustomizationCache (set_cache — server workers all
/// point at one cache, so a congestion bucket is priced once per process
/// instead of once per worker) or a private ChCustomizer built on first
/// use (the standalone path; set_threads picks its sweep strategy and
/// bucket-to-bucket changes re-price incrementally). Search() swaps planes
/// only when the weights actually change, so a query stream at a fixed
/// traffic bucket pays nothing.
///
/// Search(): upward Dijkstra from s over UpArcs and downward Dijkstra from
/// t over DownArcs with stall-on-demand, meeting at the hierarchy peak.
/// Labels are epoch-stamped like DijkstraSearch, so a warm query allocates
/// nothing and costs O(visited) to reset.
///
/// The customized costs pick the argmin path; callers needing costs that
/// are bit-identical to a plain Dijkstra over the original graph recompute
/// them over the unpacked original-edge path (ChExactPathCost) — float sums
/// depend on association order, so the winning path is re-accumulated
/// exactly the way the reference sweep would have.
class ChQuery {
 public:
  /// Sentinel arc reference marking a search seed / original-arc leaf.
  static constexpr uint32_t kNoArcRef = 0xFFFFFFFFu;

  explicit ChQuery(const ChIndex& ch);

  /// Prices the hierarchy for `weights` if the current plane does not
  /// already match. Search() calls this implicitly.
  void EnsureCustomized(const ChClassWeights& weights);

  /// Sources planes from `cache` instead of the private customizer; null
  /// reverts. The active plane survives the switch.
  void set_cache(ChCustomizationCache* cache) { cache_ = cache; }
  ChCustomizationCache* cache() const { return cache_; }

  /// Sweep parallelism of the private customizer (ignored when a cache is
  /// attached — the cache's own customizer decides): 0 = serial seed path.
  void set_threads(int threads);
  int threads() const { return threads_; }

  /// Shortest up-down distance s -> t under `weights`; kInfiniteCost when
  /// unreachable, exactly 0.0 when s == t. Out-of-range ids are
  /// unreachable. Keeps meeting state for UnpackPath().
  double Search(NodeId s, NodeId t, const ChClassWeights& weights);

  /// Appends the last successful Search()'s path as original EdgeIds in
  /// forward (s -> t) order. Empty for s == t. Must not be called after an
  /// unreachable Search.
  void UnpackPath(std::vector<EdgeId>* out);

  /// Builds the elimination-tree label space of `v` under the current
  /// customization (EnsureCustomized must have run; `v` must be in range).
  /// kForward prices v -> ancestor up-paths, kBackward ancestor -> v
  /// down-paths. No priority queue and no stall scans: ancestors are
  /// relaxed in chain order, which is topological for both climb
  /// directions. Returns false — leaving `out` unusable — if an arc ever
  /// leaves the ancestor chain, i.e. the index was not built by a
  /// contraction whose fill is closed over the arcs it kept; callers fall
  /// back to Search() in that case.
  bool BuildSpace(NodeId v, SweepDirection dir, ChSpace* out);

  /// Cheapest customized connection of a forward and a backward space over
  /// their common elimination-tree suffix. Writes the meet's chain
  /// positions and returns kInfiniteCost when the spaces never connect.
  double MeetSpaces(const ChSpace& fwd, const ChSpace& bwd, uint32_t* fpos,
                    uint32_t* bpos) const;

  /// Unpacks the connection found by MeetSpaces into original EdgeIds in
  /// forward (fwd.source -> bwd.source) order. Empty when the sources
  /// coincide.
  void UnpackMeet(const ChSpace& fwd, uint32_t fpos, const ChSpace& bwd,
                  uint32_t bpos, std::vector<EdgeId>* out);

  /// Heap pops of the last Search (exposed for benchmarks).
  size_t last_settled() const { return last_settled_; }

  /// Customization sweeps THIS query ran (cache hits are not counted —
  /// with a shared cache attached, summing this across workers against the
  /// cache's builds() shows the dedup). Tests assert a stable query stream
  /// prices the hierarchy exactly once.
  size_t customizations() const { return customizations_; }

  /// The active plane (null before the first EnsureCustomized); shared so
  /// a ChProfileQuery can reuse it as one lane of a window.
  std::shared_ptr<const ChCustomization> plane() const { return plane_; }

  /// Mirrors customization sweeps onto `registry` as `ch.customizations`;
  /// null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry);

  const ChIndex& index() const { return ch_; }

 private:
  struct Label {
    double dist;
    uint32_t parent_arc;  // packed ChIndex ref of the relaxed arc
    NodeId parent_node;   // node the arc was relaxed from
    uint32_t version;
  };

  struct HeapEntry {
    double priority;
    NodeId node;
  };
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    return a.priority > b.priority;
  }

  void EnsureElimTree();

  double CwByRef(uint32_t ref) const {
    return (ref & ChIndex::kDownBit) != 0
               ? cw_down_[ref & ~ChIndex::kDownBit]
               : cw_up_[ref];
  }

  const ChIndex& ch_;

  // Active customization plane (shared, immutable) plus its hot-path raw
  // views; the private customizer exists only on the no-cache path.
  std::shared_ptr<const ChCustomization> plane_;
  const double* cw_up_ = nullptr;
  const double* cw_down_ = nullptr;
  ChCustomizationCache* cache_ = nullptr;
  std::unique_ptr<ChCustomizer> customizer_;
  int threads_ = 0;
  size_t customizations_ = 0;
  obs::Counter* customizations_mirror_ = nullptr;

  std::vector<Label> flabel_;
  std::vector<Label> blabel_;
  std::vector<uint32_t> fsettled_;
  std::vector<uint32_t> bsettled_;
  std::vector<HeapEntry> fheap_;
  std::vector<HeapEntry> bheap_;
  std::vector<ChUnpackItem> unpack_stack_;
  std::vector<ChUnpackItem> path_items_;
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  // Elimination tree (built lazily, metric-independent) and the chain
  // position scratch BuildSpace stamps per call.
  std::vector<NodeId> parent_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> pos_stamp_;
  uint32_t space_epoch_ = 0;

  // Meeting state of the last Search.
  NodeId last_s_ = kInvalidNode;
  NodeId last_t_ = kInvalidNode;
  NodeId meet_ = kInvalidNode;
};

/// Exact congested cost of the shortest s -> t path, folded over the
/// unpacked original edges in the accumulation order of the reference
/// Dijkstra sweeps: a forward sweep folds source-to-target, a backward
/// (in-adjacency) sweep folds target-side-first. `cost` must be the same
/// functor the reference sweep would use; `scratch` holds the unpacked
/// edges between calls so a warm call allocates nothing. Returns
/// kInfiniteCost when unreachable and exactly 0.0 when s == t.
double ChExactPathCost(ChQuery* query, const RoadNetwork& network, NodeId s,
                       NodeId t, const ChClassWeights& weights,
                       const EdgeCostFn& cost, SweepDirection fold,
                       std::vector<EdgeId>* scratch);

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CH_QUERY_H_
