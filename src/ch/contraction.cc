#include "ch/contraction.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

namespace ecocharge {

namespace {

/// Leaf size of the nested-dissection recursion; cells at or below this
/// size are ordered purely by the greedy heuristic.
constexpr size_t kNdLeafSize = 64;

/// Above this many in x out pairs the fill term of the priority is
/// approximated by the pair count itself (a clique-regime upper bound)
/// instead of enumerated — the exact edge difference stops mattering once a
/// separator has collapsed into a near-clique, while enumerating it would
/// make every lazy-queue pop quadratic.
constexpr size_t kFillCountCap = 4096;

/// Priority distance between adjacent dissection levels. Must exceed any
/// greedy priority magnitude (bounded by a few times the largest clique's
/// pair count) so the dissection order is strict.
constexpr double kNdLevelBias = 1.0e9;

/// \brief Geometric nested dissection: depth[v] = recursion depth at which
/// v joined a separator (leaf cells share their cell's depth).
///
/// Recursive median bisection on the wider bounding-box axis; the
/// separator is the set of left-half nodes with an arc into the right half
/// (either direction), which disconnects the remainder. Deeper nodes are
/// contracted first, so separators rise to the top of the hierarchy and
/// fill-in stays confined to cells — the planar-graph guarantee the greedy
/// edge-difference order alone cannot give (its fill grows like a clique on
/// grid-like networks).
std::vector<uint32_t> NdDepths(const RoadNetwork& net, uint32_t* max_depth) {
  const size_t n = net.NumNodes();
  std::vector<uint32_t> depth(n, 0);
  std::vector<uint32_t> side(n, 0);
  uint32_t stamp = 0;
  *max_depth = 0;

  struct Task {
    std::vector<NodeId> nodes;
    uint32_t d;
  };
  std::vector<Task> stack;
  Task root;
  root.nodes.resize(n);
  std::iota(root.nodes.begin(), root.nodes.end(), NodeId{0});
  root.d = 0;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    Task t = std::move(stack.back());
    stack.pop_back();
    *max_depth = std::max(*max_depth, t.d);
    if (t.nodes.size() <= kNdLeafSize) {
      for (NodeId v : t.nodes) depth[v] = t.d;
      continue;
    }
    double minx = std::numeric_limits<double>::infinity(), maxx = -minx;
    double miny = minx, maxy = maxx;
    for (NodeId v : t.nodes) {
      const Point& p = net.NodePosition(v);
      minx = std::min(minx, p.x);
      maxx = std::max(maxx, p.x);
      miny = std::min(miny, p.y);
      maxy = std::max(maxy, p.y);
    }
    const bool split_x = (maxx - minx) >= (maxy - miny);
    const auto coord = [&](NodeId v) {
      const Point& p = net.NodePosition(v);
      return split_x ? p.x : p.y;
    };
    const size_t mid = t.nodes.size() / 2;
    std::nth_element(t.nodes.begin(), t.nodes.begin() + mid, t.nodes.end(),
                     [&](NodeId a, NodeId b) {
                       const double ca = coord(a), cb = coord(b);
                       if (ca != cb) return ca < cb;
                       return a < b;  // deterministic on coordinate ties
                     });
    const uint32_t right_stamp = ++stamp;
    for (size_t i = mid; i < t.nodes.size(); ++i) side[t.nodes[i]] = right_stamp;

    Task left{{}, t.d + 1}, right{{}, t.d + 1};
    right.nodes.assign(t.nodes.begin() + mid, t.nodes.end());
    for (size_t i = 0; i < mid; ++i) {
      const NodeId v = t.nodes[i];
      bool crossing = false;
      for (const Arc& a : net.OutArcs(v)) {
        if (side[a.node] == right_stamp) {
          crossing = true;
          break;
        }
      }
      if (!crossing) {
        for (const Arc& a : net.InArcs(v)) {
          if (side[a.node] == right_stamp) {
            crossing = true;
            break;
          }
        }
      }
      if (crossing) {
        depth[v] = t.d;  // separator: highest ranks of this cell
      } else {
        left.nodes.push_back(v);
      }
    }
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  return depth;
}

/// Mutable contraction state. The elimination works on the simple directed
/// graph (one entry per ordered node pair): per-node sorted neighbor-id
/// vectors are the core adjacency, fill-in pairs are appended to a flat
/// list, and nothing is ever removed — contracted endpoints are filtered on
/// iteration, and every arc (original or fill) survives into the final
/// hierarchy so the triangle closure holds.
class Contractor {
 public:
  Contractor(const RoadNetwork& network, ChBuildStats* stats)
      : net_(network), stats_(stats) {}

  Result<std::shared_ptr<ChIndex>> Run();

 private:
  struct HeapEntry {
    double priority;
    NodeId node;
  };
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.node > b.node;  // deterministic tie-break
  }

  void SeedAdjacency();
  void GatherLive(NodeId x);
  double Priority(NodeId x);
  void Contract(NodeId x);
  Result<std::shared_ptr<ChIndex>> Finalize();

  static bool Contains(const std::vector<NodeId>& sorted, NodeId v) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    return it != sorted.end() && *it == v;
  }
  static void Insert(std::vector<NodeId>& sorted, NodeId v) {
    sorted.insert(std::lower_bound(sorted.begin(), sorted.end(), v), v);
  }

  const RoadNetwork& net_;
  ChBuildStats* stats_;

  std::vector<std::vector<NodeId>> out_;  // sorted, unique, grows only
  std::vector<std::vector<NodeId>> in_;
  std::vector<uint8_t> contracted_;
  std::vector<uint32_t> rank_;
  std::vector<uint32_t> del_neighbors_;
  std::vector<uint32_t> nd_depth_;
  uint32_t nd_max_depth_ = 0;
  uint32_t next_rank_ = 0;

  // Fill-in pairs in creation order (tail, head), emitted as shortcut arcs.
  std::vector<NodeId> fill_tail_;
  std::vector<NodeId> fill_head_;

  // GatherLive() scratch.
  std::vector<NodeId> live_ins_;
  std::vector<NodeId> live_outs_;
};

void Contractor::SeedAdjacency() {
  const size_t n = net_.NumNodes();
  out_.resize(n);
  in_.resize(n);
  contracted_.assign(n, 0);
  rank_.assign(n, 0);
  del_neighbors_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& a : net_.OutArcs(v)) {
      if (a.node == v) continue;  // self-loops never lie on shortest paths
      out_[v].push_back(a.node);
      in_[a.node].push_back(v);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(out_[v].begin(), out_[v].end());
    out_[v].erase(std::unique(out_[v].begin(), out_[v].end()), out_[v].end());
    std::sort(in_[v].begin(), in_[v].end());
    in_[v].erase(std::unique(in_[v].begin(), in_[v].end()), in_[v].end());
  }
}

void Contractor::GatherLive(NodeId x) {
  live_ins_.clear();
  live_outs_.clear();
  for (NodeId u : in_[x]) {
    if (contracted_[u] == 0) live_ins_.push_back(u);
  }
  for (NodeId v : out_[x]) {
    if (contracted_[v] == 0) live_outs_.push_back(v);
  }
}

double Contractor::Priority(NodeId x) {
  GatherLive(x);
  const size_t removed = live_ins_.size() + live_outs_.size();
  const size_t pairs = live_ins_.size() * live_outs_.size();
  size_t fill;
  if (pairs > kFillCountCap) {
    fill = pairs;  // clique regime: the upper bound orders just as well
  } else {
    fill = 0;
    for (NodeId u : live_ins_) {
      for (NodeId v : live_outs_) {
        if (v != u && !Contains(out_[u], v)) ++fill;
      }
    }
  }
  const double greedy = 2.0 * (static_cast<double>(fill) -
                               static_cast<double>(removed)) +
                        static_cast<double>(del_neighbors_[x]);
  // Strict dissection-level separation: deeper cells contract first.
  return greedy +
         kNdLevelBias * static_cast<double>(nd_max_depth_ - nd_depth_[x]);
}

void Contractor::Contract(NodeId x) {
  // GatherLive(x) just ran inside the Priority() call that won the queue.
  for (NodeId u : live_ins_) {
    for (NodeId v : live_outs_) {
      if (v == u || Contains(out_[u], v)) continue;
      Insert(out_[u], v);
      Insert(in_[v], u);
      fill_tail_.push_back(u);
      fill_head_.push_back(v);
      if (stats_ != nullptr) ++stats_->shortcuts;
    }
  }
  if (stats_ != nullptr) {
    stats_->max_live_degree =
        std::max(stats_->max_live_degree,
                 static_cast<uint64_t>(live_ins_.size() + live_outs_.size()));
  }
  contracted_[x] = 1;
  rank_[x] = next_rank_++;
  // Deleted-neighbor heuristic: every still-live neighbor loses x.
  for (NodeId u : live_ins_) ++del_neighbors_[u];
  for (NodeId v : live_outs_) ++del_neighbors_[v];
}

Result<std::shared_ptr<ChIndex>> Contractor::Finalize() {
  const size_t n = net_.NumNodes();
  struct Owned {
    std::vector<uint32_t> rank, up_offsets, down_offsets;
    std::vector<ChArc> up_arcs, down_arcs;
  };
  auto owned = std::make_shared<Owned>();
  owned->rank = std::move(rank_);
  owned->up_offsets.assign(n + 1, 0);
  owned->down_offsets.assign(n + 1, 0);

  // Pass 1: per-node degrees. An arc climbs the hierarchy (up CSR at its
  // tail) or descends (down CSR at its head); ranks are distinct, so every
  // arc lands in exactly one array. Parallel original arcs all survive —
  // customization takes the per-pair minimum at query weights.
  auto count_arc = [&](NodeId from, NodeId to) {
    if (owned->rank[from] < owned->rank[to]) {
      ++owned->up_offsets[from + 1];
    } else {
      ++owned->down_offsets[to + 1];
    }
  };
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& a : net_.OutArcs(v)) {
      if (a.node != v) count_arc(v, a.node);
    }
  }
  for (size_t i = 0; i < fill_tail_.size(); ++i) {
    count_arc(fill_tail_[i], fill_head_[i]);
  }
  for (size_t v = 0; v < n; ++v) {
    owned->up_offsets[v + 1] += owned->up_offsets[v];
    owned->down_offsets[v + 1] += owned->down_offsets[v];
  }
  owned->up_arcs.resize(owned->up_offsets[n]);
  owned->down_arcs.resize(owned->down_offsets[n]);

  // Pass 2: scatter the records through per-row cursors.
  std::vector<uint32_t> up_cursor(owned->up_offsets.begin(),
                                  owned->up_offsets.end() - 1);
  std::vector<uint32_t> down_cursor(owned->down_offsets.begin(),
                                    owned->down_offsets.end() - 1);
  auto place_arc = [&](NodeId from, NodeId to, ChArc rec) {
    if (owned->rank[from] < owned->rank[to]) {
      rec.node = to;
      owned->up_arcs[up_cursor[from]++] = rec;
    } else {
      rec.node = from;  // backward search walks head -> tail
      owned->down_arcs[down_cursor[to]++] = rec;
    }
  };
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId first = net_.FirstOutEdge(v);
    const auto arcs = net_.OutArcs(v);
    for (size_t i = 0; i < arcs.size(); ++i) {
      const Arc& a = arcs[i];
      if (a.node == v) continue;
      ChArc rec{};
      rec.orig = first + static_cast<EdgeId>(i);
      rec.len[static_cast<int>(a.road_class)] = a.length_m;
      place_arc(v, a.node, rec);
    }
  }
  for (size_t i = 0; i < fill_tail_.size(); ++i) {
    ChArc rec{};  // orig = kChShortcutEdge, len = 0: weighted at query time
    place_arc(fill_tail_[i], fill_head_[i], rec);
  }

  // Pass 3: sort each row by far endpoint (parallel originals by EdgeId) so
  // lookups can binary-search and customization can merge rows.
  auto row_order = [](const ChArc& a, const ChArc& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.orig < b.orig;
  };
  for (size_t v = 0; v < n; ++v) {
    std::sort(owned->up_arcs.begin() + owned->up_offsets[v],
              owned->up_arcs.begin() + owned->up_offsets[v + 1], row_order);
    std::sort(owned->down_arcs.begin() + owned->down_offsets[v],
              owned->down_arcs.begin() + owned->down_offsets[v + 1], row_order);
  }

  ChIndex::Views views;
  views.rank = owned->rank;
  views.up_offsets = owned->up_offsets;
  views.up_arcs = owned->up_arcs;
  views.down_offsets = owned->down_offsets;
  views.down_arcs = owned->down_arcs;
  views.backing = owned;
  return ChIndex::FromViews(views, net_.NumEdges());
}

Result<std::shared_ptr<ChIndex>> Contractor::Run() {
  const size_t n = net_.NumNodes();
  if (n == 0) return Status::InvalidArgument("cannot contract an empty graph");
  SeedAdjacency();
  nd_depth_ = NdDepths(net_, &nd_max_depth_);

  std::vector<HeapEntry> heap;
  heap.reserve(n);
  for (NodeId v = 0; v < n; ++v) heap.push_back({Priority(v), v});
  std::make_heap(heap.begin(), heap.end(), Later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), Later);
    const NodeId x = heap.back().node;
    heap.pop_back();
    if (contracted_[x] != 0) continue;
    if (stats_ != nullptr) ++stats_->ordering_pops;
    // Lazy update: neighbors contracted since this entry was pushed may
    // have changed x's priority. Recompute; reinsert unless it still wins.
    const double p = Priority(x);
    if (!heap.empty() && p > heap.front().priority) {
      heap.push_back({p, x});
      std::push_heap(heap.begin(), heap.end(), Later);
      continue;
    }
    Contract(x);  // consumes the live lists Priority() just gathered
  }
  return Finalize();
}

}  // namespace

Result<std::shared_ptr<ChIndex>> BuildChIndex(const RoadNetwork& network,
                                              ChBuildStats* stats) {
  if (stats != nullptr) *stats = ChBuildStats{};
  Contractor contractor(network, stats);
  return contractor.Run();
}

}  // namespace ecocharge
