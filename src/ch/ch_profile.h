#ifndef ECOCHARGE_CH_CH_PROFILE_H_
#define ECOCHARGE_CH_CH_PROFILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ch/ch_customize.h"
#include "ch/ch_index.h"
#include "graph/shortest_path.h"

namespace ecocharge {

/// \brief One endpoint's elimination-tree label space across k weight
/// planes (an ETA window's lanes).
///
/// Identical structure to ChSpace with every per-position value widened to
/// `lanes` doubles: `dist[i * lanes + j]` is the cheapest climb cost from
/// the source to `chain[i]` under plane j, `pred_*` likewise. Lane j is
/// bit-identical to the ChSpace a single-plane BuildSpace would produce
/// under plane j — the window is one chain walk and one arc sweep instead
/// of k.
struct ChProfileSpace {
  std::vector<NodeId> chain;
  std::vector<double> dist;        ///< position-major, `lanes` per position
  std::vector<uint32_t> pred_arc;  ///< packed ref per (position, lane)
  std::vector<uint32_t> pred_pos;  ///< predecessor chain index per (pos, lane)
  size_t lanes = 0;
  NodeId source = kInvalidNode;
  bool forward = true;
};

/// \brief Multi-plane (time-dependent "profile") batch-space query: one
/// elimination-tree pass answers a whole ETA window.
///
/// A continuous query wants the same charger legs at k consecutive
/// congestion buckets (the Offering Table's forecast horizon). Running
/// ChQuery k times repeats the chain walk, the arc-row traversal, and the
/// cache misses k-fold for data that differs only in the weight plane.
/// ChProfileQuery walks the chain once and relaxes each arc against all k
/// planes in the inner loop — the planes' cost arrays are indexed by the
/// same arc offsets, so the per-lane relaxation sequence (and therefore
/// every lane's labels, predecessors, unpacked paths, and refolded costs)
/// is bit-identical to k independent single-plane queries.
///
/// Planes are shared immutable ChCustomizations — typically k consecutive
/// bucket planes out of one ChCustomizationCache, so a prewarm pass both
/// fills the cache and prices the window in a single search.
class ChProfileQuery {
 public:
  static constexpr uint32_t kNoArcRef = 0xFFFFFFFFu;

  explicit ChProfileQuery(const ChIndex& ch);

  /// Sets the window's lanes (plane j = lane j). Planes must belong to
  /// this index; the query keeps shared ownership.
  void SetPlanes(
      std::span<const std::shared_ptr<const ChCustomization>> planes);

  size_t lanes() const { return planes_.size(); }
  const ChCustomization& plane(size_t lane) const { return *planes_[lane]; }

  /// Builds v's label space across every lane. Same contract as
  /// ChQuery::BuildSpace; returns false when a relax target leaves the
  /// ancestor chain in ANY lane (conservative: a caller falls back to
  /// per-lane point-to-point searches).
  bool BuildSpace(NodeId v, SweepDirection dir, ChProfileSpace* out);

  /// Per-lane cheapest connection over the spaces' common suffix:
  /// `dist[j]` / `fpos[j]` / `bpos[j]` are lane j's meet (kInfiniteCost
  /// when unconnected). Spans must have lanes() elements.
  void MeetSpaces(const ChProfileSpace& fwd, const ChProfileSpace& bwd,
                  std::span<double> dist, std::span<uint32_t> fpos,
                  std::span<uint32_t> bpos) const;

  /// Unpacks lane `lane`'s connection into original EdgeIds in forward
  /// order (same contract as ChQuery::UnpackMeet).
  void UnpackMeet(const ChProfileSpace& fwd, uint32_t fpos,
                  const ChProfileSpace& bwd, uint32_t bpos, size_t lane,
                  std::vector<EdgeId>* out);

  const ChIndex& index() const { return ch_; }

 private:
  void EnsureElimTree();

  const ChIndex& ch_;
  std::vector<std::shared_ptr<const ChCustomization>> planes_;
  std::vector<const double*> lane_up_;    ///< planes_[j]->cw_up.data()
  std::vector<const double*> lane_down_;  ///< planes_[j]->cw_down.data()

  std::vector<NodeId> parent_;
  std::vector<uint32_t> pos_;
  std::vector<uint32_t> pos_stamp_;
  uint32_t space_epoch_ = 0;

  std::vector<ChUnpackItem> unpack_stack_;
  std::vector<ChUnpackItem> path_items_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CH_PROFILE_H_
