#ifndef ECOCHARGE_CH_CH_CUSTOMIZE_H_
#define ECOCHARGE_CH_CH_CUSTOMIZE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ch/ch_index.h"
#include "obs/metrics.h"

namespace ecocharge {

/// \brief Per-class weights of one query instant.
///
/// The derouting metric at time tau prices an edge at
/// `length / speed_factor(road_class, tau)` — three multipliers, one per
/// RoadClass. The traffic layer builds these from its congestion model;
/// `kChLengthWeights` is the uniform (pure length) metric used for
/// lower-bound ordering queries.
struct ChClassWeights {
  double w[kChNumClasses] = {1.0, 1.0, 1.0};
};

inline constexpr ChClassWeights kChLengthWeights{};

/// \brief One immutable customized weight plane of a ChIndex.
///
/// `cw_up[i]` / `cw_down[i]` are the customized costs of the index's arc
/// records under `weights`; `via_up[i]` / `via_down[i]` hold the middle
/// node realizing each priced arc (kInvalidNode = the original arc itself
/// is cheapest). A plane is write-once: the customizer fills it, then it
/// is shared read-only — queries keep a shared_ptr, so a plane outlives
/// any cache eviction while a search still reads it.
struct ChCustomization {
  ChClassWeights weights;
  std::vector<double> cw_up;
  std::vector<double> cw_down;
  std::vector<NodeId> via_up;
  std::vector<NodeId> via_down;
};

/// Metric-independent elimination-tree parents of `ch`: the lowest-ranked
/// far endpoint of each node's rows (kInvalidNode at the root). Shared by
/// ChQuery's batch spaces and ChProfileQuery's multi-plane spaces.
std::vector<NodeId> ChElimTreeParents(const ChIndex& ch);

/// One pending shortcut/arc expansion step (packed ref + forward
/// orientation endpoints).
struct ChUnpackItem {
  uint32_t ref;  ///< packed ChIndex arc reference
  NodeId from;   ///< arc tail in forward orientation
  NodeId to;     ///< arc head
};

/// Cheapest record of the (possibly parallel) run `v -> to` in v's up row
/// under `plane`; ties break on the first record. Mirrors the run-minima
/// collapse of the customization sweep, so expansion re-finds exactly the
/// records the sweep summed.
uint32_t ChMinUpRef(const ChIndex& ch, const ChCustomization& plane, NodeId v,
                    NodeId to);
/// Cheapest record of the run `from -> v` in v's down row (kDownBit set).
uint32_t ChMinDownRef(const ChIndex& ch, const ChCustomization& plane,
                      NodeId v, NodeId from);

/// Expands `item` into original EdgeIds (appended to `*out`, forward
/// order) by recursing through each priced arc's via node. `*stack` is
/// caller-owned LIFO scratch (cleared here), so warm calls allocate
/// nothing. Shared by ChQuery::UnpackPath/UnpackMeet and ChProfileQuery.
void ChExpandItem(const ChIndex& ch, const ChCustomization& plane,
                  const ChUnpackItem& item, std::vector<ChUnpackItem>* stack,
                  std::vector<EdgeId>* out);

/// \brief Prices a ChIndex for class-weight vectors: serial, level-parallel,
/// and incremental sweeps, all bit-identical.
///
/// Three strategies over the same triangle closure:
///  - `threads == 0`: the seed path — the single-threaded push sweep
///    (process apexes by ascending rank, relax every enclosing arc).
///  - `threads >= 1`: the pull formulation — every node owns the arc
///    records in its own rows and *finalizes* them by merging each lower
///    neighbor's rows against its own. Writes touch only owned rows and
///    reads touch only rows of strictly lower contraction *level*
///    (level(v) = 1 + max level over lower neighbors), so all nodes of one
///    level customize concurrently with a barrier between levels. Candidate
///    triangles apply in ascending apex rank with strict-< improvement —
///    the same doubles in the same order as the push sweep, so the output
///    (costs and via assignments) is bit-identical for any thread count.
///  - CustomizeFrom(): incremental re-pricing. Every arc carries the union
///    of road classes of every arc participating in any of its candidate
///    triangles, transitively (the shortcut closure of its class set). A
///    weight delta confined to classes outside that mask leaves the arc's
///    cost and via bit-identical, so only the *records* whose mask
///    intersects the changed classes are re-priced (owners ascending rank,
///    serial, relaxation restricted to the dirty run heads); everything
///    else is one memcpy of the base plane. Falls back to a full sweep when
///    the dirty estimate exceeds half the arc records (or all three classes
///    moved).
///
/// The pull-side structures (rank order, levels, inverted lower-neighbor
/// index, class masks) are metric-independent and built lazily exactly
/// once; a customizer is safe to share across threads as long as
/// concurrent Customize calls are externally serialized (the
/// ChCustomizationCache holds its build mutex across them).
class ChCustomizer {
 public:
  /// \param threads sweep parallelism: 0 = serial push seed path, N >= 1 =
  ///   level-parallel pull sweep with min(N, level width) workers.
  explicit ChCustomizer(const ChIndex& ch, int threads = 0);

  /// Full customization of `weights` (strategy per `threads`).
  std::shared_ptr<const ChCustomization> Customize(const ChClassWeights& weights);

  /// Re-customization from `base` (a fully customized plane) to `weights`.
  /// Incremental when the class delta is small, full otherwise;
  /// `*incremental` (optional) reports which path ran. Returns `base`
  /// itself when the weights are unchanged.
  std::shared_ptr<const ChCustomization> CustomizeFrom(
      std::shared_ptr<const ChCustomization> base, const ChClassWeights& weights,
      bool* incremental = nullptr);

  int threads() const { return threads_; }
  void set_threads(int threads) { threads_ = threads; }

  /// rank -> node permutation (built on first use).
  const std::vector<NodeId>& order();

  /// Contraction levels (pull-side structure; built on first use).
  size_t num_levels();

  /// Arc records whose class-mask closure intersects `changed_mask` — the
  /// incremental sweep's work estimate (counted per record: only those
  /// records are re-priced, the rest keep the base plane's bits).
  size_t DirtyArcEstimate(uint8_t changed_mask);

  size_t total_arcs() const;

  /// Class-mask closure of one arc record (bit c = RoadClass c participates
  /// in some candidate realization). Exposed for tests.
  uint8_t UpArcMask(size_t i);
  uint8_t DownArcMask(size_t i);

 private:
  /// One inverted-adjacency entry: apex `x` plus where the owner's run
  /// starts in x's row (global arc index).
  struct LowerRef {
    NodeId x;
    uint32_t run;
  };

  void EnsureOrder();
  void EnsurePull();   ///< levels + inverted lower-neighbor index
  void EnsureMasks();  ///< class-mask closure + dirty estimates

  void CustomizeSerial(const ChClassWeights& weights,
                       ChCustomization* plane) const;
  void CustomizeParallel(const ChClassWeights& weights, ChCustomization* plane);
  /// Re-initializes and finalizes one node's rows under the pull
  /// formulation (reads only rows of lower-ranked nodes).
  void PullNode(NodeId l, const ChClassWeights& weights,
                ChCustomization* plane) const;
  /// Incremental counterpart of PullNode: re-initializes and re-relaxes
  /// only the records of `l`'s rows whose class closure intersects
  /// `changed`, leaving clean records with their (bit-identical) base
  /// values. Same candidate order and comparisons as PullNode, restricted
  /// to the dirty run heads — bit-identical where it writes.
  void RepriceNode(NodeId l, const ChClassWeights& weights, uint8_t changed,
                   ChCustomization* plane);

  const ChIndex& ch_;
  int threads_;

  std::once_flag order_once_;
  std::vector<NodeId> order_;  ///< rank -> node

  std::once_flag pull_once_;
  std::vector<uint32_t> level_of_;       ///< per node
  std::vector<uint32_t> level_offsets_;  ///< CSR into level_order_
  std::vector<NodeId> level_order_;      ///< nodes grouped by level, rank asc
  std::vector<uint32_t> inv_up_offsets_;   ///< CSR: owner -> x's up-row runs
  std::vector<LowerRef> inv_up_entries_;   ///< arcs x -> owner (x's up row)
  std::vector<uint32_t> inv_down_offsets_; ///< CSR: owner -> x's down-row runs
  std::vector<LowerRef> inv_down_entries_; ///< arcs owner -> x (x's down row)

  std::once_flag mask_once_;
  std::vector<uint8_t> mask_up_;    ///< per up-arc record class closure
  std::vector<uint8_t> mask_down_;  ///< per down-arc record class closure
  std::vector<uint8_t> node_mask_;  ///< OR of both rows per node
  size_t dirty_arcs_by_mask_[8] = {0};

  /// RepriceNode scratch: the dirty run heads of the current node's rows
  /// (CustomizeFrom is serial, so one instance suffices).
  std::vector<uint32_t> dirty_heads_up_;
  std::vector<uint32_t> dirty_heads_down_;
};

/// \brief Shared per-bucket customization cache with RCU-style publication.
///
/// Customized planes are immutable once built and a congestion bucket's
/// class weights are a pure function of the bucket, so N server workers
/// asking for the same bucket need exactly one sweep. Readers pin an
/// immutable snapshot of the plane table by copying one shared_ptr under
/// a tiny mutex held only for the refcount bump — the probe scan itself
/// runs lock-free on the snapshot (the WorldEpochs publish-without-
/// blocking idea, with reference counts standing in for the reader-pin
/// ring since planes are heavyweight);
/// writers copy, append, and publish under a single build mutex, which is
/// also what collapses a thundering herd of concurrent misses into one
/// build. The last built plane seeds the next build's incremental base, so
/// bucket-to-bucket deltas re-price only the touched class closure.
class ChCustomizationCache {
 public:
  /// \param threads forwarded to the internal ChCustomizer.
  /// \param max_planes retained planes; beyond it the oldest entry is
  ///   dropped (readers holding it keep it alive).
  ChCustomizationCache(const ChIndex& ch, int threads = 0,
                       size_t max_planes = 64);

  /// The plane for `weights`: a published one when present, else built
  /// (once, however many workers ask concurrently) and published.
  /// `*built` (optional) reports whether THIS call ran the sweep — the
  /// per-worker customization counter's source of truth.
  std::shared_ptr<const ChCustomization> Get(const ChClassWeights& weights,
                                             bool* built = nullptr);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Sweeps actually run; misses() - builds() is the dedup win.
  uint64_t builds() const { return builds_.load(std::memory_order_relaxed); }
  uint64_t incremental_builds() const {
    return incremental_.load(std::memory_order_relaxed);
  }
  size_t size() const;

  ChCustomizer& customizer() { return customizer_; }
  const ChIndex& index() const { return ch_; }

  /// Mirrors hit/miss/build counts onto `registry` under `ch.cache.*` and
  /// records build durations into `ch.customize_ns`; null detaches. Wire
  /// before traffic starts.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    uint64_t digest;
    std::shared_ptr<const ChCustomization> plane;
  };
  using Table = std::vector<Entry>;

  const ChIndex& ch_;
  size_t max_planes_;
  ChCustomizer customizer_;

  /// Publication point: readers copy the current immutable-table pointer
  /// under table_mu_ (held only for the refcounted copy — the scan itself
  /// is lock-free on the snapshot), writers swap in a copied successor.
  /// Deliberately NOT std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic
  /// releases its internal spinlock on the load path with a relaxed RMW,
  /// which leaves reader pointer-copies formally unordered against the
  /// next store — a data race TSan (correctly) reports under the chpar
  /// cache-hammer test. A plain mutex gives the same snapshot semantics
  /// with clean happens-before edges.
  std::shared_ptr<const Table> SnapshotTable() const;
  mutable std::mutex table_mu_;
  std::shared_ptr<const Table> table_;  // guarded by table_mu_
  std::mutex build_mu_;
  std::shared_ptr<const ChCustomization> last_built_;  // guarded by build_mu_

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> builds_{0};
  std::atomic<uint64_t> incremental_{0};

  obs::Counter* hits_mirror_ = nullptr;
  obs::Counter* misses_mirror_ = nullptr;
  obs::Counter* builds_mirror_ = nullptr;
  obs::Counter* incremental_mirror_ = nullptr;
  obs::Histogram* customize_ns_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CH_CUSTOMIZE_H_
