#include "ch/ch_query.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace ecocharge {

namespace {

constexpr uint32_t kNoParentArc = ChQuery::kNoArcRef;

double Dot(const double len[kChNumClasses], const ChClassWeights& w) {
  return len[0] * w.w[0] + len[1] * w.w[1] + len[2] * w.w[2];
}

}  // namespace

ChQuery::ChQuery(const ChIndex& ch)
    : ch_(ch),
      flabel_(ch.NumNodes(), Label{kInfiniteCost, kNoParentArc, kInvalidNode, 0}),
      blabel_(ch.NumNodes(), Label{kInfiniteCost, kNoParentArc, kInvalidNode, 0}),
      fsettled_(ch.NumNodes(), 0),
      bsettled_(ch.NumNodes(), 0) {}

void ChQuery::EnsureCustomized(const ChClassWeights& weights) {
  if (have_weights_ && weights.w[0] == weights_.w[0] &&
      weights.w[1] == weights_.w[1] && weights.w[2] == weights_.w[2]) {
    return;
  }
  Customize(weights);
}

void ChQuery::Customize(const ChClassWeights& weights) {
  const size_t n = ch_.NumNodes();
  if (order_.empty()) {
    order_.resize(n);
    for (NodeId v = 0; v < n; ++v) order_[ch_.rank(v)] = v;
  }
  const auto up = ch_.up_arcs();
  const auto down = ch_.down_arcs();
  cw_up_.resize(up.size());
  cw_down_.resize(down.size());
  via_up_.assign(up.size(), kInvalidNode);
  via_down_.assign(down.size(), kInvalidNode);
  // Base costs: original arcs priced with the weights (one class is
  // nonzero, so the dot product is exactly length * weight); shortcut arcs
  // start unpriced and receive their cost from a triangle below.
  for (size_t i = 0; i < up.size(); ++i) {
    cw_up_[i] =
        up[i].orig == kChShortcutEdge ? kInfiniteCost : Dot(up[i].len, weights);
  }
  for (size_t i = 0; i < down.size(); ++i) {
    cw_down_[i] = down[i].orig == kChShortcutEdge ? kInfiniteCost
                                                  : Dot(down[i].len, weights);
  }
  // Bottom-up sweep: when x is processed, every arc incident to x is final
  // (its remaining triangles would have an apex ranked below x, already
  // processed). Relaxing all (a -> x -> b) pairs therefore prices every
  // enclosing arc exactly; iteration order is fixed and improvements are
  // strict, so the via assignment is deterministic. Parallel records
  // collapse to per-neighbor run minima first — min(ca_i + cu_j) separates
  // into min(ca) + min(cu), the same double bit for bit — and the
  // relaxation targets are then found by merging sorted rows instead of a
  // binary search per pair, which matters inside the near-clique top
  // separators the nested-dissection order produces.
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  std::vector<std::pair<NodeId, double>> downs;  // (a, min cost a -> x)
  std::vector<std::pair<NodeId, double>> ups;    // (b, min cost x -> b)
  for (size_t r = 0; r < n; ++r) {
    const NodeId x = order_[r];
    downs.clear();
    ups.clear();
    for (uint32_t i = down_off[x]; i < down_off[x + 1];) {
      const NodeId a = down[i].node;
      double ca = cw_down_[i];
      for (++i; i < down_off[x + 1] && down[i].node == a; ++i) {
        ca = std::min(ca, cw_down_[i]);
      }
      if (ca < kInfiniteCost) downs.push_back({a, ca});
    }
    for (uint32_t j = up_off[x]; j < up_off[x + 1];) {
      const NodeId b = up[j].node;
      double cu = cw_up_[j];
      for (++j; j < up_off[x + 1] && up[j].node == b; ++j) {
        cu = std::min(cu, cw_up_[j]);
      }
      if (cu < kInfiniteCost) ups.push_back({b, cu});
    }
    if (downs.empty() || ups.empty()) continue;
    // Pairs with rank(a) < rank(b): the enclosing arc lives in a's up row.
    for (const auto& [a, ca] : downs) {
      uint32_t k = up_off[a];
      const uint32_t kend = up_off[a + 1];
      auto it = ups.begin();
      while (it != ups.end() && k < kend) {
        if (up[k].node < it->first) {
          ++k;
        } else if (it->first < up[k].node) {
          ++it;
        } else {
          const double cost = ca + it->second;
          if (cost < cw_up_[k]) {
            cw_up_[k] = cost;
            via_up_[k] = x;
          }
          const NodeId b = it->first;
          for (++k; k < kend && up[k].node == b; ++k) {
          }
          ++it;
        }
      }
    }
    // Pairs with rank(a) > rank(b): the enclosing arc lives in b's down row.
    for (const auto& [b, cu] : ups) {
      uint32_t k = down_off[b];
      const uint32_t kend = down_off[b + 1];
      auto it = downs.begin();
      while (it != downs.end() && k < kend) {
        if (down[k].node < it->first) {
          ++k;
        } else if (it->first < down[k].node) {
          ++it;
        } else {
          const double cost = it->second + cu;
          if (cost < cw_down_[k]) {
            cw_down_[k] = cost;
            via_down_[k] = x;
          }
          const NodeId a = it->first;
          for (++k; k < kend && down[k].node == a; ++k) {
          }
          ++it;
        }
      }
    }
  }
  weights_ = weights;
  have_weights_ = true;
  ++customizations_;
}

double ChQuery::Search(NodeId s, NodeId t, const ChClassWeights& weights) {
  EnsureCustomized(weights);
  last_settled_ = 0;
  last_s_ = s;
  last_t_ = t;
  meet_ = kInvalidNode;
  const size_t n = ch_.NumNodes();
  if (s >= n || t >= n) return kInfiniteCost;
  if (s == t) {
    meet_ = s;
    return 0.0;
  }
  if (++epoch_ == 0) {
    for (Label& l : flabel_) l.version = 0;
    for (Label& l : blabel_) l.version = 0;
    std::fill(fsettled_.begin(), fsettled_.end(), 0);
    std::fill(bsettled_.begin(), bsettled_.end(), 0);
    epoch_ = 1;
  }
  fheap_.clear();
  bheap_.clear();
  flabel_[s] = {0.0, kNoParentArc, kInvalidNode, epoch_};
  blabel_[t] = {0.0, kNoParentArc, kInvalidNode, epoch_};
  fheap_.push_back({0.0, s});
  bheap_.push_back({0.0, t});

  double best = kInfiniteCost;
  auto try_meet = [&](NodeId v) {
    if (flabel_[v].version == epoch_ && blabel_[v].version == epoch_) {
      const double sum = flabel_[v].dist + blabel_[v].dist;
      if (sum < best) {
        best = sum;
        meet_ = v;
      }
    }
  };

  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();

  // Both directions climb the hierarchy and may only meet at the path's
  // peak, so (unlike plain bidirectional Dijkstra) each side must keep
  // settling until its own queue minimum reaches the best connection.
  while (!fheap_.empty() || !bheap_.empty()) {
    const double ftop = fheap_.empty() ? kInfiniteCost : fheap_.front().priority;
    const double btop = bheap_.empty() ? kInfiniteCost : bheap_.front().priority;
    if (std::min(ftop, btop) >= best) break;
    const bool forward = ftop <= btop;
    std::vector<HeapEntry>& heap = forward ? fheap_ : bheap_;
    std::vector<Label>& label = forward ? flabel_ : blabel_;
    std::vector<uint32_t>& settled = forward ? fsettled_ : bsettled_;

    std::pop_heap(heap.begin(), heap.end(), Later);
    const NodeId v = heap.back().node;
    heap.pop_back();
    if (settled[v] == epoch_) continue;  // stale heap entry
    settled[v] = epoch_;
    ++last_settled_;
    const double d = label[v].dist;
    if (d >= best) continue;

    // Stall-on-demand: when a higher-ranked node already reached v more
    // cheaply through the opposite adjacency, v's label is not a prefix of
    // any shortest up-down path — settle it but do not expand.
    bool stalled = false;
    if (forward) {
      const auto arcs = ch_.DownArcs(v);  // arcs a.node -> v
      for (size_t i = 0; i < arcs.size(); ++i) {
        const Label& lu = flabel_[arcs[i].node];
        if (lu.version == epoch_ && lu.dist + cw_down_[down_off[v] + i] < d) {
          stalled = true;
          break;
        }
      }
    } else {
      const auto arcs = ch_.UpArcs(v);  // arcs v -> a.node
      for (size_t i = 0; i < arcs.size(); ++i) {
        const Label& lu = blabel_[arcs[i].node];
        if (lu.version == epoch_ && lu.dist + cw_up_[up_off[v] + i] < d) {
          stalled = true;
          break;
        }
      }
    }
    if (stalled) continue;

    if (forward) {
      const auto arcs = ch_.UpArcs(v);
      for (size_t i = 0; i < arcs.size(); ++i) {
        const double w = cw_up_[up_off[v] + i];
        if (!(w < kInfiniteCost)) continue;
        const double nd = d + w;
        Label& lw = flabel_[arcs[i].node];
        if (lw.version != epoch_ || nd < lw.dist) {
          lw = {nd, ch_.UpRef(v, i), v, epoch_};
          fheap_.push_back({nd, arcs[i].node});
          std::push_heap(fheap_.begin(), fheap_.end(), Later);
          try_meet(arcs[i].node);
        }
      }
    } else {
      const auto arcs = ch_.DownArcs(v);
      for (size_t i = 0; i < arcs.size(); ++i) {  // arc arcs[i].node -> v
        const double w = cw_down_[down_off[v] + i];
        if (!(w < kInfiniteCost)) continue;
        const double nd = d + w;
        Label& lw = blabel_[arcs[i].node];
        if (lw.version != epoch_ || nd < lw.dist) {
          lw = {nd, ch_.DownRef(v, i), v, epoch_};
          bheap_.push_back({nd, arcs[i].node});
          std::push_heap(bheap_.begin(), bheap_.end(), Later);
          try_meet(arcs[i].node);
        }
      }
    }
  }
  return best;
}

void ChQuery::EnsureElimTree() {
  if (!parent_.empty()) return;
  const size_t n = ch_.NumNodes();
  parent_.assign(n, kInvalidNode);
  // Every far endpoint of a node's rows outranks it, so the lowest-ranked
  // one is the elimination-tree parent; the chain to the root is strictly
  // rank-increasing.
  for (NodeId v = 0; v < n; ++v) {
    uint32_t best_rank = 0xFFFFFFFFu;
    NodeId best = kInvalidNode;
    for (const ChArc& a : ch_.UpArcs(v)) {
      if (ch_.rank(a.node) < best_rank) {
        best_rank = ch_.rank(a.node);
        best = a.node;
      }
    }
    for (const ChArc& a : ch_.DownArcs(v)) {
      if (ch_.rank(a.node) < best_rank) {
        best_rank = ch_.rank(a.node);
        best = a.node;
      }
    }
    parent_[v] = best;
  }
  pos_.assign(n, 0);
  pos_stamp_.assign(n, 0);
}

bool ChQuery::BuildSpace(NodeId v, SweepDirection dir, ChSpace* out) {
  assert(have_weights_ && "BuildSpace requires a customization");
  assert(v < ch_.NumNodes());
  EnsureElimTree();
  if (++space_epoch_ == 0) {
    std::fill(pos_stamp_.begin(), pos_stamp_.end(), 0);
    space_epoch_ = 1;
  }
  out->source = v;
  out->forward = dir == SweepDirection::kForward;
  out->chain.clear();
  for (NodeId x = v; x != kInvalidNode; x = parent_[x]) {
    pos_[x] = static_cast<uint32_t>(out->chain.size());
    pos_stamp_[x] = space_epoch_;
    out->chain.push_back(x);
  }
  const size_t len = out->chain.size();
  out->dist.assign(len, kInfiniteCost);
  out->pred_arc.assign(len, kNoParentArc);
  out->pred_pos.assign(len, 0);
  out->dist[0] = 0.0;
  // Chain order ascends in rank, and both climb directions only ever step
  // to higher ranks, so one in-order pass relaxes every arc after its
  // tail's label is final — Dijkstra's invariant without the heap. A relax
  // target off the chain means the fill was not closed under the
  // contraction order; the caller gets `false` and uses Search() instead.
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  for (size_t i = 0; i < len; ++i) {
    const double d = out->dist[i];
    if (!(d < kInfiniteCost)) continue;
    const NodeId x = out->chain[i];
    if (out->forward) {
      const auto arcs = ch_.UpArcs(x);
      for (size_t k = 0; k < arcs.size(); ++k) {
        const double w = cw_up_[up_off[x] + k];
        if (!(w < kInfiniteCost)) continue;
        const NodeId y = arcs[k].node;
        if (pos_stamp_[y] != space_epoch_) return false;
        const uint32_t j = pos_[y];
        const double nd = d + w;
        if (nd < out->dist[j]) {
          out->dist[j] = nd;
          out->pred_arc[j] = ch_.UpRef(x, k);
          out->pred_pos[j] = static_cast<uint32_t>(i);
        }
      }
    } else {
      const auto arcs = ch_.DownArcs(x);  // arcs arcs[k].node -> x
      for (size_t k = 0; k < arcs.size(); ++k) {
        const double w = cw_down_[down_off[x] + k];
        if (!(w < kInfiniteCost)) continue;
        const NodeId y = arcs[k].node;
        if (pos_stamp_[y] != space_epoch_) return false;
        const uint32_t j = pos_[y];
        const double nd = d + w;
        if (nd < out->dist[j]) {
          out->dist[j] = nd;
          out->pred_arc[j] = ch_.DownRef(x, k);
          out->pred_pos[j] = static_cast<uint32_t>(i);
        }
      }
    }
  }
  return true;
}

double ChQuery::MeetSpaces(const ChSpace& fwd, const ChSpace& bwd,
                           uint32_t* fpos, uint32_t* bpos) const {
  // Two root paths of a tree intersect in exactly their common suffix, and
  // the peak of any shortest up-down path is a common ancestor, so scanning
  // the suffix sees every candidate meet. Ties keep the deepest node.
  const size_t fn = fwd.chain.size();
  const size_t bn = bwd.chain.size();
  size_t l = 0;
  while (l < fn && l < bn && fwd.chain[fn - 1 - l] == bwd.chain[bn - 1 - l]) {
    ++l;
  }
  double best = kInfiniteCost;
  for (size_t k = 0; k < l; ++k) {
    const size_t fi = fn - l + k;
    const size_t bj = bn - l + k;
    const double sum = fwd.dist[fi] + bwd.dist[bj];
    if (sum < best) {
      best = sum;
      *fpos = static_cast<uint32_t>(fi);
      *bpos = static_cast<uint32_t>(bj);
    }
  }
  return best;
}

void ChQuery::UnpackMeet(const ChSpace& fwd, uint32_t fpos, const ChSpace& bwd,
                         uint32_t bpos, std::vector<EdgeId>* out) {
  out->clear();
  // Upward half: predecessor chain runs meet -> source; collect and reverse
  // so the expansion emits edges in source -> meet order.
  path_items_.clear();
  for (uint32_t p = fpos; fwd.pred_arc[p] != kNoParentArc;
       p = fwd.pred_pos[p]) {
    path_items_.push_back(
        {fwd.pred_arc[p], fwd.chain[fwd.pred_pos[p]], fwd.chain[p]});
  }
  std::reverse(path_items_.begin(), path_items_.end());
  for (const UnpackItem& item : path_items_) ExpandItem(item, out);
  // Downward half: each predecessor arc already runs chain[p] ->
  // chain[pred_pos[p]] in forward orientation, walking meet -> target.
  for (uint32_t p = bpos; bwd.pred_arc[p] != kNoParentArc;
       p = bwd.pred_pos[p]) {
    ExpandItem({bwd.pred_arc[p], bwd.chain[p], bwd.chain[bwd.pred_pos[p]]},
               out);
  }
}

uint32_t ChQuery::MinUpRef(NodeId v, NodeId to) const {
  size_t k = ch_.FindUpArc(v, to);
  assert(k != SIZE_MAX && "unpack: missing up arc");
  const auto up = ch_.up_arcs();
  size_t best = k;
  for (size_t i = k + 1; i < ch_.up_offsets()[v + 1] && up[i].node == to; ++i) {
    if (cw_up_[i] < cw_up_[best]) best = i;
  }
  return static_cast<uint32_t>(best);
}

uint32_t ChQuery::MinDownRef(NodeId v, NodeId from) const {
  size_t k = ch_.FindDownArc(v, from);
  assert(k != SIZE_MAX && "unpack: missing down arc");
  const auto down = ch_.down_arcs();
  size_t best = k;
  for (size_t i = k + 1; i < ch_.down_offsets()[v + 1] && down[i].node == from;
       ++i) {
    if (cw_down_[i] < cw_down_[best]) best = i;
  }
  return ChIndex::kDownBit | static_cast<uint32_t>(best);
}

void ChQuery::ExpandItem(const UnpackItem& item, std::vector<EdgeId>* out) {
  unpack_stack_.clear();
  unpack_stack_.push_back(item);
  while (!unpack_stack_.empty()) {
    const UnpackItem it = unpack_stack_.back();
    unpack_stack_.pop_back();
    const NodeId via = ViaByRef(it.ref);
    if (via == kInvalidNode) {
      // Cheapest realization is the original arc itself.
      assert(ch_.arc(it.ref).orig != kChShortcutEdge);
      out->push_back(ch_.arc(it.ref).orig);
      continue;
    }
    // The via node sits below both endpoints, so the halves live in its own
    // rows: (from -> via) among its down arcs, (via -> to) among its up
    // arcs. Their customized costs are the ones the sweep summed, so
    // re-finding the cheapest records reproduces the priced path exactly.
    // LIFO: left half on top so it expands first.
    unpack_stack_.push_back({MinUpRef(via, it.to), via, it.to});
    unpack_stack_.push_back({MinDownRef(via, it.from), it.from, via});
  }
}

void ChQuery::UnpackPath(std::vector<EdgeId>* out) {
  out->clear();
  if (meet_ == kInvalidNode || last_s_ == last_t_) return;
  // Upward half: parent chain runs meet -> s; collect and reverse so the
  // expansion emits edges in s -> meet order.
  path_items_.clear();
  for (NodeId v = meet_; v != last_s_; v = flabel_[v].parent_node) {
    path_items_.push_back({flabel_[v].parent_arc, flabel_[v].parent_node, v});
  }
  std::reverse(path_items_.begin(), path_items_.end());
  for (const UnpackItem& item : path_items_) ExpandItem(item, out);
  // Downward half: the backward parent chain already walks meet -> t in
  // forward arc orientation (each parent arc runs v -> parent).
  for (NodeId v = meet_; v != last_t_; v = blabel_[v].parent_node) {
    ExpandItem({blabel_[v].parent_arc, v, blabel_[v].parent_node}, out);
  }
}

double ChExactPathCost(ChQuery* query, const RoadNetwork& network, NodeId s,
                       NodeId t, const ChClassWeights& weights,
                       const EdgeCostFn& cost, SweepDirection fold,
                       std::vector<EdgeId>* scratch) {
  const double search_dist = query->Search(s, t, weights);
  if (!(search_dist < kInfiniteCost)) return kInfiniteCost;
  query->UnpackPath(scratch);
  // Fold in the reference sweep's association order. A forward Dijkstra
  // accumulates ((0 + c1) + c2) + ... from the source; a backward sweep
  // seeds the far end, so its sum attaches arcs target-side first —
  // iterate the forward-oriented path in reverse (addition commutes
  // bitwise in IEEE 754; only the grouping matters).
  double acc = 0.0;
  if (fold == SweepDirection::kForward) {
    for (EdgeId e : *scratch) acc = acc + cost(network.arc(e));
  } else {
    for (auto it = scratch->rbegin(); it != scratch->rend(); ++it) {
      acc = acc + cost(network.arc(*it));
    }
  }
  return acc;
}

}  // namespace ecocharge
