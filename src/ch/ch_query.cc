#include "ch/ch_query.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace ecocharge {

namespace {

constexpr uint32_t kNoParentArc = ChQuery::kNoArcRef;

bool SameWeights(const ChClassWeights& a, const ChClassWeights& b) {
  return a.w[0] == b.w[0] && a.w[1] == b.w[1] && a.w[2] == b.w[2];
}

}  // namespace

ChQuery::ChQuery(const ChIndex& ch)
    : ch_(ch),
      flabel_(ch.NumNodes(), Label{kInfiniteCost, kNoParentArc, kInvalidNode, 0}),
      blabel_(ch.NumNodes(), Label{kInfiniteCost, kNoParentArc, kInvalidNode, 0}),
      fsettled_(ch.NumNodes(), 0),
      bsettled_(ch.NumNodes(), 0) {}

void ChQuery::set_threads(int threads) {
  threads_ = threads;
  if (customizer_ != nullptr) customizer_->set_threads(threads);
}

void ChQuery::AttachMetrics(obs::MetricsRegistry* registry) {
  customizations_mirror_ =
      registry != nullptr
          ? registry->GetCounter("ch.customizations", "sweeps")
          : nullptr;
}

void ChQuery::EnsureCustomized(const ChClassWeights& weights) {
  if (plane_ != nullptr && SameWeights(plane_->weights, weights)) return;
  if (cache_ != nullptr) {
    // Shared path: the cache dedups across workers; only a plane this call
    // actually built counts as this query's customization.
    bool built = false;
    plane_ = cache_->Get(weights, &built);
    if (built) {
      ++customizations_;
      if (customizations_mirror_ != nullptr) customizations_mirror_->Add();
    }
  } else {
    if (customizer_ == nullptr) {
      customizer_ = std::make_unique<ChCustomizer>(ch_, threads_);
    }
    // Seeding from the outgoing plane makes a small class delta (the
    // common bucket-to-bucket step) an incremental re-price.
    plane_ = customizer_->CustomizeFrom(std::move(plane_), weights);
    ++customizations_;
    if (customizations_mirror_ != nullptr) customizations_mirror_->Add();
  }
  cw_up_ = plane_->cw_up.data();
  cw_down_ = plane_->cw_down.data();
}

double ChQuery::Search(NodeId s, NodeId t, const ChClassWeights& weights) {
  EnsureCustomized(weights);
  last_settled_ = 0;
  last_s_ = s;
  last_t_ = t;
  meet_ = kInvalidNode;
  const size_t n = ch_.NumNodes();
  if (s >= n || t >= n) return kInfiniteCost;
  if (s == t) {
    meet_ = s;
    return 0.0;
  }
  if (++epoch_ == 0) {
    for (Label& l : flabel_) l.version = 0;
    for (Label& l : blabel_) l.version = 0;
    std::fill(fsettled_.begin(), fsettled_.end(), 0);
    std::fill(bsettled_.begin(), bsettled_.end(), 0);
    epoch_ = 1;
  }
  fheap_.clear();
  bheap_.clear();
  flabel_[s] = {0.0, kNoParentArc, kInvalidNode, epoch_};
  blabel_[t] = {0.0, kNoParentArc, kInvalidNode, epoch_};
  fheap_.push_back({0.0, s});
  bheap_.push_back({0.0, t});

  double best = kInfiniteCost;
  auto try_meet = [&](NodeId v) {
    if (flabel_[v].version == epoch_ && blabel_[v].version == epoch_) {
      const double sum = flabel_[v].dist + blabel_[v].dist;
      if (sum < best) {
        best = sum;
        meet_ = v;
      }
    }
  };

  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();

  // Both directions climb the hierarchy and may only meet at the path's
  // peak, so (unlike plain bidirectional Dijkstra) each side must keep
  // settling until its own queue minimum reaches the best connection.
  while (!fheap_.empty() || !bheap_.empty()) {
    const double ftop = fheap_.empty() ? kInfiniteCost : fheap_.front().priority;
    const double btop = bheap_.empty() ? kInfiniteCost : bheap_.front().priority;
    if (std::min(ftop, btop) >= best) break;
    const bool forward = ftop <= btop;
    std::vector<HeapEntry>& heap = forward ? fheap_ : bheap_;
    std::vector<Label>& label = forward ? flabel_ : blabel_;
    std::vector<uint32_t>& settled = forward ? fsettled_ : bsettled_;

    std::pop_heap(heap.begin(), heap.end(), Later);
    const NodeId v = heap.back().node;
    heap.pop_back();
    if (settled[v] == epoch_) continue;  // stale heap entry
    settled[v] = epoch_;
    ++last_settled_;
    const double d = label[v].dist;
    if (d >= best) continue;

    // Stall-on-demand: when a higher-ranked node already reached v more
    // cheaply through the opposite adjacency, v's label is not a prefix of
    // any shortest up-down path — settle it but do not expand.
    bool stalled = false;
    if (forward) {
      const auto arcs = ch_.DownArcs(v);  // arcs a.node -> v
      for (size_t i = 0; i < arcs.size(); ++i) {
        const Label& lu = flabel_[arcs[i].node];
        if (lu.version == epoch_ && lu.dist + cw_down_[down_off[v] + i] < d) {
          stalled = true;
          break;
        }
      }
    } else {
      const auto arcs = ch_.UpArcs(v);  // arcs v -> a.node
      for (size_t i = 0; i < arcs.size(); ++i) {
        const Label& lu = blabel_[arcs[i].node];
        if (lu.version == epoch_ && lu.dist + cw_up_[up_off[v] + i] < d) {
          stalled = true;
          break;
        }
      }
    }
    if (stalled) continue;

    if (forward) {
      const auto arcs = ch_.UpArcs(v);
      for (size_t i = 0; i < arcs.size(); ++i) {
        const double w = cw_up_[up_off[v] + i];
        if (!(w < kInfiniteCost)) continue;
        const double nd = d + w;
        Label& lw = flabel_[arcs[i].node];
        if (lw.version != epoch_ || nd < lw.dist) {
          lw = {nd, ch_.UpRef(v, i), v, epoch_};
          fheap_.push_back({nd, arcs[i].node});
          std::push_heap(fheap_.begin(), fheap_.end(), Later);
          try_meet(arcs[i].node);
        }
      }
    } else {
      const auto arcs = ch_.DownArcs(v);
      for (size_t i = 0; i < arcs.size(); ++i) {  // arc arcs[i].node -> v
        const double w = cw_down_[down_off[v] + i];
        if (!(w < kInfiniteCost)) continue;
        const double nd = d + w;
        Label& lw = blabel_[arcs[i].node];
        if (lw.version != epoch_ || nd < lw.dist) {
          lw = {nd, ch_.DownRef(v, i), v, epoch_};
          bheap_.push_back({nd, arcs[i].node});
          std::push_heap(bheap_.begin(), bheap_.end(), Later);
          try_meet(arcs[i].node);
        }
      }
    }
  }
  return best;
}

void ChQuery::EnsureElimTree() {
  if (!parent_.empty()) return;
  parent_ = ChElimTreeParents(ch_);
  pos_.assign(ch_.NumNodes(), 0);
  pos_stamp_.assign(ch_.NumNodes(), 0);
}

bool ChQuery::BuildSpace(NodeId v, SweepDirection dir, ChSpace* out) {
  assert(plane_ != nullptr && "BuildSpace requires a customization");
  assert(v < ch_.NumNodes());
  EnsureElimTree();
  if (++space_epoch_ == 0) {
    std::fill(pos_stamp_.begin(), pos_stamp_.end(), 0);
    space_epoch_ = 1;
  }
  out->source = v;
  out->forward = dir == SweepDirection::kForward;
  out->chain.clear();
  for (NodeId x = v; x != kInvalidNode; x = parent_[x]) {
    pos_[x] = static_cast<uint32_t>(out->chain.size());
    pos_stamp_[x] = space_epoch_;
    out->chain.push_back(x);
  }
  const size_t len = out->chain.size();
  out->dist.assign(len, kInfiniteCost);
  out->pred_arc.assign(len, kNoParentArc);
  out->pred_pos.assign(len, 0);
  out->dist[0] = 0.0;
  // Chain order ascends in rank, and both climb directions only ever step
  // to higher ranks, so one in-order pass relaxes every arc after its
  // tail's label is final — Dijkstra's invariant without the heap. A relax
  // target off the chain means the fill was not closed under the
  // contraction order; the caller gets `false` and uses Search() instead.
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  for (size_t i = 0; i < len; ++i) {
    const double d = out->dist[i];
    if (!(d < kInfiniteCost)) continue;
    const NodeId x = out->chain[i];
    if (out->forward) {
      const auto arcs = ch_.UpArcs(x);
      for (size_t k = 0; k < arcs.size(); ++k) {
        const double w = cw_up_[up_off[x] + k];
        if (!(w < kInfiniteCost)) continue;
        const NodeId y = arcs[k].node;
        if (pos_stamp_[y] != space_epoch_) return false;
        const uint32_t j = pos_[y];
        const double nd = d + w;
        if (nd < out->dist[j]) {
          out->dist[j] = nd;
          out->pred_arc[j] = ch_.UpRef(x, k);
          out->pred_pos[j] = static_cast<uint32_t>(i);
        }
      }
    } else {
      const auto arcs = ch_.DownArcs(x);  // arcs arcs[k].node -> x
      for (size_t k = 0; k < arcs.size(); ++k) {
        const double w = cw_down_[down_off[x] + k];
        if (!(w < kInfiniteCost)) continue;
        const NodeId y = arcs[k].node;
        if (pos_stamp_[y] != space_epoch_) return false;
        const uint32_t j = pos_[y];
        const double nd = d + w;
        if (nd < out->dist[j]) {
          out->dist[j] = nd;
          out->pred_arc[j] = ch_.DownRef(x, k);
          out->pred_pos[j] = static_cast<uint32_t>(i);
        }
      }
    }
  }
  return true;
}

double ChQuery::MeetSpaces(const ChSpace& fwd, const ChSpace& bwd,
                           uint32_t* fpos, uint32_t* bpos) const {
  // Two root paths of a tree intersect in exactly their common suffix, and
  // the peak of any shortest up-down path is a common ancestor, so scanning
  // the suffix sees every candidate meet. Ties keep the deepest node.
  const size_t fn = fwd.chain.size();
  const size_t bn = bwd.chain.size();
  size_t l = 0;
  while (l < fn && l < bn && fwd.chain[fn - 1 - l] == bwd.chain[bn - 1 - l]) {
    ++l;
  }
  double best = kInfiniteCost;
  for (size_t k = 0; k < l; ++k) {
    const size_t fi = fn - l + k;
    const size_t bj = bn - l + k;
    const double sum = fwd.dist[fi] + bwd.dist[bj];
    if (sum < best) {
      best = sum;
      *fpos = static_cast<uint32_t>(fi);
      *bpos = static_cast<uint32_t>(bj);
    }
  }
  return best;
}

void ChQuery::UnpackMeet(const ChSpace& fwd, uint32_t fpos, const ChSpace& bwd,
                         uint32_t bpos, std::vector<EdgeId>* out) {
  out->clear();
  // Upward half: predecessor chain runs meet -> source; collect and reverse
  // so the expansion emits edges in source -> meet order.
  path_items_.clear();
  for (uint32_t p = fpos; fwd.pred_arc[p] != kNoParentArc;
       p = fwd.pred_pos[p]) {
    path_items_.push_back(
        {fwd.pred_arc[p], fwd.chain[fwd.pred_pos[p]], fwd.chain[p]});
  }
  std::reverse(path_items_.begin(), path_items_.end());
  for (const ChUnpackItem& item : path_items_) {
    ChExpandItem(ch_, *plane_, item, &unpack_stack_, out);
  }
  // Downward half: each predecessor arc already runs chain[p] ->
  // chain[pred_pos[p]] in forward orientation, walking meet -> target.
  for (uint32_t p = bpos; bwd.pred_arc[p] != kNoParentArc;
       p = bwd.pred_pos[p]) {
    ChExpandItem(ch_, *plane_,
                 {bwd.pred_arc[p], bwd.chain[p], bwd.chain[bwd.pred_pos[p]]},
                 &unpack_stack_, out);
  }
}

void ChQuery::UnpackPath(std::vector<EdgeId>* out) {
  out->clear();
  if (meet_ == kInvalidNode || last_s_ == last_t_) return;
  // Upward half: parent chain runs meet -> s; collect and reverse so the
  // expansion emits edges in s -> meet order.
  path_items_.clear();
  for (NodeId v = meet_; v != last_s_; v = flabel_[v].parent_node) {
    path_items_.push_back({flabel_[v].parent_arc, flabel_[v].parent_node, v});
  }
  std::reverse(path_items_.begin(), path_items_.end());
  for (const ChUnpackItem& item : path_items_) {
    ChExpandItem(ch_, *plane_, item, &unpack_stack_, out);
  }
  // Downward half: the backward parent chain already walks meet -> t in
  // forward arc orientation (each parent arc runs v -> parent).
  for (NodeId v = meet_; v != last_t_; v = blabel_[v].parent_node) {
    ChExpandItem(ch_, *plane_,
                 {blabel_[v].parent_arc, v, blabel_[v].parent_node},
                 &unpack_stack_, out);
  }
}

double ChExactPathCost(ChQuery* query, const RoadNetwork& network, NodeId s,
                       NodeId t, const ChClassWeights& weights,
                       const EdgeCostFn& cost, SweepDirection fold,
                       std::vector<EdgeId>* scratch) {
  const double search_dist = query->Search(s, t, weights);
  if (!(search_dist < kInfiniteCost)) return kInfiniteCost;
  query->UnpackPath(scratch);
  // Fold in the reference sweep's association order. A forward Dijkstra
  // accumulates ((0 + c1) + c2) + ... from the source; a backward sweep
  // seeds the far end, so its sum attaches arcs target-side first —
  // iterate the forward-oriented path in reverse (addition commutes
  // bitwise in IEEE 754; only the grouping matters).
  double acc = 0.0;
  if (fold == SweepDirection::kForward) {
    for (EdgeId e : *scratch) acc = acc + cost(network.arc(e));
  } else {
    for (auto it = scratch->rbegin(); it != scratch->rend(); ++it) {
      acc = acc + cost(network.arc(*it));
    }
  }
  return acc;
}

}  // namespace ecocharge
