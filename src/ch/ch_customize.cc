#include "ch/ch_customize.h"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "graph/shortest_path.h"

namespace ecocharge {

namespace {

double Dot(const double len[kChNumClasses], const ChClassWeights& w) {
  return len[0] * w.w[0] + len[1] * w.w[1] + len[2] * w.w[2];
}

bool SameWeights(const ChClassWeights& a, const ChClassWeights& b) {
  return a.w[0] == b.w[0] && a.w[1] == b.w[1] && a.w[2] == b.w[2];
}

/// Bitmask of classes whose weight differs between the two vectors.
uint8_t ChangedClasses(const ChClassWeights& a, const ChClassWeights& b) {
  uint8_t m = 0;
  for (int c = 0; c < kChNumClasses; ++c) {
    if (a.w[c] != b.w[c]) m |= static_cast<uint8_t>(1u << c);
  }
  return m;
}

uint8_t OrigMask(const ChArc& arc) {
  if (arc.orig == kChShortcutEdge) return 0;
  uint8_t m = 0;
  for (int c = 0; c < kChNumClasses; ++c) {
    if (arc.len[c] != 0.0) m |= static_cast<uint8_t>(1u << c);
  }
  return m;
}

}  // namespace

std::vector<NodeId> ChElimTreeParents(const ChIndex& ch) {
  const size_t n = ch.NumNodes();
  std::vector<NodeId> parent(n, kInvalidNode);
  // Every far endpoint of a node's rows outranks it, so the lowest-ranked
  // one is the elimination-tree parent; the chain to the root is strictly
  // rank-increasing.
  for (NodeId v = 0; v < n; ++v) {
    uint32_t best_rank = 0xFFFFFFFFu;
    NodeId best = kInvalidNode;
    for (const ChArc& a : ch.UpArcs(v)) {
      if (ch.rank(a.node) < best_rank) {
        best_rank = ch.rank(a.node);
        best = a.node;
      }
    }
    for (const ChArc& a : ch.DownArcs(v)) {
      if (ch.rank(a.node) < best_rank) {
        best_rank = ch.rank(a.node);
        best = a.node;
      }
    }
    parent[v] = best;
  }
  return parent;
}

uint32_t ChMinUpRef(const ChIndex& ch, const ChCustomization& plane, NodeId v,
                    NodeId to) {
  size_t k = ch.FindUpArc(v, to);
  assert(k != SIZE_MAX && "unpack: missing up arc");
  const auto up = ch.up_arcs();
  size_t best = k;
  for (size_t i = k + 1; i < ch.up_offsets()[v + 1] && up[i].node == to; ++i) {
    if (plane.cw_up[i] < plane.cw_up[best]) best = i;
  }
  return static_cast<uint32_t>(best);
}

uint32_t ChMinDownRef(const ChIndex& ch, const ChCustomization& plane,
                      NodeId v, NodeId from) {
  size_t k = ch.FindDownArc(v, from);
  assert(k != SIZE_MAX && "unpack: missing down arc");
  const auto down = ch.down_arcs();
  size_t best = k;
  for (size_t i = k + 1; i < ch.down_offsets()[v + 1] && down[i].node == from;
       ++i) {
    if (plane.cw_down[i] < plane.cw_down[best]) best = i;
  }
  return ChIndex::kDownBit | static_cast<uint32_t>(best);
}

void ChExpandItem(const ChIndex& ch, const ChCustomization& plane,
                  const ChUnpackItem& item, std::vector<ChUnpackItem>* stack,
                  std::vector<EdgeId>* out) {
  stack->clear();
  stack->push_back(item);
  while (!stack->empty()) {
    const ChUnpackItem it = stack->back();
    stack->pop_back();
    const NodeId via = (it.ref & ChIndex::kDownBit) != 0
                           ? plane.via_down[it.ref & ~ChIndex::kDownBit]
                           : plane.via_up[it.ref];
    if (via == kInvalidNode) {
      // Cheapest realization is the original arc itself.
      assert(ch.arc(it.ref).orig != kChShortcutEdge);
      out->push_back(ch.arc(it.ref).orig);
      continue;
    }
    // The via node sits below both endpoints, so the halves live in its own
    // rows: (from -> via) among its down arcs, (via -> to) among its up
    // arcs. Their customized costs are the ones the sweep summed, so
    // re-finding the cheapest records reproduces the priced path exactly.
    // LIFO: left half on top so it expands first.
    stack->push_back({ChMinUpRef(ch, plane, via, it.to), via, it.to});
    stack->push_back({ChMinDownRef(ch, plane, via, it.from), it.from, via});
  }
}

ChCustomizer::ChCustomizer(const ChIndex& ch, int threads)
    : ch_(ch), threads_(threads) {}

void ChCustomizer::EnsureOrder() {
  std::call_once(order_once_, [this] {
    const size_t n = ch_.NumNodes();
    order_.resize(n);
    for (NodeId v = 0; v < n; ++v) order_[ch_.rank(v)] = v;
  });
}

const std::vector<NodeId>& ChCustomizer::order() {
  EnsureOrder();
  return order_;
}

size_t ChCustomizer::total_arcs() const {
  return ch_.NumUpArcs() + ch_.NumDownArcs();
}

void ChCustomizer::EnsurePull() {
  std::call_once(pull_once_, [this] {
    EnsureOrder();
    const size_t n = ch_.NumNodes();
    const auto up = ch_.up_arcs();
    const auto down = ch_.down_arcs();
    const auto up_off = ch_.up_offsets();
    const auto down_off = ch_.down_offsets();

    // Contraction levels: level(v) = 1 + max level over lower neighbors.
    // Walking nodes by ascending rank makes every propagation x -> f flow
    // from an already-final level (all of f's lower neighbors outrank-
    // precede f), so one pass suffices.
    level_of_.assign(n, 0);
    uint32_t max_level = 0;
    for (size_t r = 0; r < n; ++r) {
      const NodeId x = order_[r];
      const uint32_t lx = level_of_[x] + 1;
      for (uint32_t i = up_off[x]; i < up_off[x + 1]; ++i) {
        level_of_[up[i].node] = std::max(level_of_[up[i].node], lx);
      }
      for (uint32_t i = down_off[x]; i < down_off[x + 1]; ++i) {
        level_of_[down[i].node] = std::max(level_of_[down[i].node], lx);
      }
      max_level = std::max(max_level, level_of_[x]);
    }
    // Nodes grouped by level, ascending rank inside each group (the fill
    // below walks ranks in order, so the counting sort is stable in rank).
    level_offsets_.assign(max_level + 2, 0);
    for (NodeId v = 0; v < n; ++v) ++level_offsets_[level_of_[v] + 1];
    for (size_t l = 1; l < level_offsets_.size(); ++l) {
      level_offsets_[l] += level_offsets_[l - 1];
    }
    level_order_.resize(n);
    std::vector<uint32_t> cursor(level_offsets_.begin(),
                                 level_offsets_.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      const NodeId v = order_[r];
      level_order_[cursor[level_of_[v]]++] = v;
    }

    // Inverted lower-neighbor index: for owner l, every apex x with an
    // l-run in its up row (arcs x -> l) or down row (arcs l -> x), plus
    // where that run starts. Filling by ascending rank of x leaves each
    // owner's entry list sorted by apex rank — exactly the candidate
    // application order the push sweep uses.
    inv_up_offsets_.assign(n + 1, 0);
    inv_down_offsets_.assign(n + 1, 0);
    for (NodeId x = 0; x < n; ++x) {
      for (uint32_t i = up_off[x]; i < up_off[x + 1];) {
        const NodeId f = up[i].node;
        ++inv_up_offsets_[f + 1];
        for (++i; i < up_off[x + 1] && up[i].node == f; ++i) {
        }
      }
      for (uint32_t i = down_off[x]; i < down_off[x + 1];) {
        const NodeId f = down[i].node;
        ++inv_down_offsets_[f + 1];
        for (++i; i < down_off[x + 1] && down[i].node == f; ++i) {
        }
      }
    }
    for (size_t v = 1; v <= n; ++v) {
      inv_up_offsets_[v] += inv_up_offsets_[v - 1];
      inv_down_offsets_[v] += inv_down_offsets_[v - 1];
    }
    inv_up_entries_.resize(inv_up_offsets_[n]);
    inv_down_entries_.resize(inv_down_offsets_[n]);
    std::vector<uint32_t> up_cursor(inv_up_offsets_.begin(),
                                    inv_up_offsets_.end() - 1);
    std::vector<uint32_t> down_cursor(inv_down_offsets_.begin(),
                                      inv_down_offsets_.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      const NodeId x = order_[r];
      for (uint32_t i = up_off[x]; i < up_off[x + 1];) {
        const NodeId f = up[i].node;
        inv_up_entries_[up_cursor[f]++] = {x, i};
        for (++i; i < up_off[x + 1] && up[i].node == f; ++i) {
        }
      }
      for (uint32_t i = down_off[x]; i < down_off[x + 1];) {
        const NodeId f = down[i].node;
        inv_down_entries_[down_cursor[f]++] = {x, i};
        for (++i; i < down_off[x + 1] && down[i].node == f; ++i) {
        }
      }
    }
  });
}

size_t ChCustomizer::num_levels() {
  EnsurePull();
  return level_offsets_.size() - 1;
}

void ChCustomizer::EnsureMasks() {
  std::call_once(mask_once_, [this] {
    EnsurePull();
    const size_t n = ch_.NumNodes();
    const auto up = ch_.up_arcs();
    const auto down = ch_.down_arcs();
    const auto up_off = ch_.up_offsets();
    const auto down_off = ch_.down_offsets();
    mask_up_.resize(up.size());
    mask_down_.resize(down.size());
    for (size_t i = 0; i < up.size(); ++i) mask_up_[i] = OrigMask(up[i]);
    for (size_t i = 0; i < down.size(); ++i) mask_down_[i] = OrigMask(down[i]);

    // Closure sweep: the mask analogue of customization. The cost sweep
    // takes a min over candidate triangles; which candidate wins depends on
    // the weights, so the mask is the union over ALL candidates (every
    // record of both contributing runs). Processing owners by ascending
    // rank closes the union transitively: an arc's final mask covers the
    // classes of every arc reachable through any realization of it.
    // Run ORs are bounded by the owning row's end: a run never spans rows
    // even when adjacent rows happen to end/start with the same neighbor.
    const auto or_down_run = [&](uint32_t i, uint32_t row_end) {
      const NodeId f = down[i].node;
      uint8_t m = 0;
      for (; i < row_end && down[i].node == f; ++i) m |= mask_down_[i];
      return m;
    };
    const auto or_up_run = [&](uint32_t i, uint32_t row_end) {
      const NodeId f = up[i].node;
      uint8_t m = 0;
      for (; i < row_end && up[i].node == f; ++i) m |= mask_up_[i];
      return m;
    };
    for (size_t r = 0; r < n; ++r) {
      const NodeId l = order_[r];
      // Up-arc targets (l -> h): candidates need apex x with l in its down
      // row and h in its up row.
      for (uint32_t e = inv_down_offsets_[l]; e < inv_down_offsets_[l + 1];
           ++e) {
        const LowerRef& lr = inv_down_entries_[e];
        const uint8_t via_mask = or_down_run(lr.run, down_off[lr.x + 1]);
        uint32_t k = up_off[l];
        const uint32_t kend = up_off[l + 1];
        uint32_t j = up_off[lr.x];
        const uint32_t jend = up_off[lr.x + 1];
        while (k < kend && j < jend) {
          if (up[k].node < up[j].node) {
            const NodeId h = up[k].node;
            for (; k < kend && up[k].node == h; ++k) {
            }
          } else if (up[j].node < up[k].node) {
            const NodeId h = up[j].node;
            for (; j < jend && up[j].node == h; ++j) {
            }
          } else {
            const NodeId h = up[k].node;
            mask_up_[k] |= static_cast<uint8_t>(via_mask | or_up_run(j, jend));
            for (; k < kend && up[k].node == h; ++k) {
            }
            for (; j < jend && up[j].node == h; ++j) {
            }
          }
        }
      }
      // Down-arc targets (h -> l): candidates need apex x with l in its up
      // row and h in its down row.
      for (uint32_t e = inv_up_offsets_[l]; e < inv_up_offsets_[l + 1]; ++e) {
        const LowerRef& lr = inv_up_entries_[e];
        const uint8_t via_mask = or_up_run(lr.run, up_off[lr.x + 1]);
        uint32_t k = down_off[l];
        const uint32_t kend = down_off[l + 1];
        uint32_t j = down_off[lr.x];
        const uint32_t jend = down_off[lr.x + 1];
        while (k < kend && j < jend) {
          if (down[k].node < down[j].node) {
            const NodeId h = down[k].node;
            for (; k < kend && down[k].node == h; ++k) {
            }
          } else if (down[j].node < down[k].node) {
            const NodeId h = down[j].node;
            for (; j < jend && down[j].node == h; ++j) {
            }
          } else {
            const NodeId h = down[k].node;
            mask_down_[k] |=
                static_cast<uint8_t>(via_mask | or_down_run(j, jend));
            for (; k < kend && down[k].node == h; ++k) {
            }
            for (; j < jend && down[j].node == h; ++j) {
            }
          }
        }
      }
    }

    // Per-node row masks (the cheap whole-node skip) and the per-delta
    // dirty-work estimates, counted per record — RepriceNode touches
    // exactly the records whose closure intersects the delta.
    node_mask_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      uint8_t m = 0;
      for (uint32_t i = up_off[v]; i < up_off[v + 1]; ++i) m |= mask_up_[i];
      for (uint32_t i = down_off[v]; i < down_off[v + 1]; ++i) {
        m |= mask_down_[i];
      }
      node_mask_[v] = m;
    }
    for (uint8_t delta = 1; delta < 8; ++delta) {
      size_t dirty = 0;
      for (uint8_t m : mask_up_) dirty += (m & delta) != 0;
      for (uint8_t m : mask_down_) dirty += (m & delta) != 0;
      dirty_arcs_by_mask_[delta] = dirty;
    }
  });
}

size_t ChCustomizer::DirtyArcEstimate(uint8_t changed_mask) {
  EnsureMasks();
  return dirty_arcs_by_mask_[changed_mask & 7];
}

uint8_t ChCustomizer::UpArcMask(size_t i) {
  EnsureMasks();
  return mask_up_[i];
}

uint8_t ChCustomizer::DownArcMask(size_t i) {
  EnsureMasks();
  return mask_down_[i];
}

void ChCustomizer::CustomizeSerial(const ChClassWeights& weights,
                                   ChCustomization* plane) const {
  const size_t n = ch_.NumNodes();
  const auto up = ch_.up_arcs();
  const auto down = ch_.down_arcs();
  auto& cw_up = plane->cw_up;
  auto& cw_down = plane->cw_down;
  // Base costs: original arcs priced with the weights (one class is
  // nonzero, so the dot product is exactly length * weight); shortcut arcs
  // start unpriced and receive their cost from a triangle below.
  for (size_t i = 0; i < up.size(); ++i) {
    cw_up[i] =
        up[i].orig == kChShortcutEdge ? kInfiniteCost : Dot(up[i].len, weights);
  }
  for (size_t i = 0; i < down.size(); ++i) {
    cw_down[i] = down[i].orig == kChShortcutEdge ? kInfiniteCost
                                                 : Dot(down[i].len, weights);
  }
  // Bottom-up push sweep (the seed path, kept verbatim): when x is
  // processed, every arc incident to x is final (its remaining triangles
  // would have an apex ranked below x, already processed). Relaxing all
  // (a -> x -> b) pairs therefore prices every enclosing arc exactly;
  // iteration order is fixed and improvements are strict, so the via
  // assignment is deterministic. Parallel records collapse to per-neighbor
  // run minima first — min(ca_i + cu_j) separates into min(ca) + min(cu),
  // the same double bit for bit — and the relaxation targets are then
  // found by merging sorted rows instead of a binary search per pair,
  // which matters inside the near-clique top separators the
  // nested-dissection order produces.
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  std::vector<std::pair<NodeId, double>> downs;  // (a, min cost a -> x)
  std::vector<std::pair<NodeId, double>> ups;    // (b, min cost x -> b)
  for (size_t r = 0; r < n; ++r) {
    const NodeId x = order_[r];
    downs.clear();
    ups.clear();
    for (uint32_t i = down_off[x]; i < down_off[x + 1];) {
      const NodeId a = down[i].node;
      double ca = cw_down[i];
      for (++i; i < down_off[x + 1] && down[i].node == a; ++i) {
        ca = std::min(ca, cw_down[i]);
      }
      if (ca < kInfiniteCost) downs.push_back({a, ca});
    }
    for (uint32_t j = up_off[x]; j < up_off[x + 1];) {
      const NodeId b = up[j].node;
      double cu = cw_up[j];
      for (++j; j < up_off[x + 1] && up[j].node == b; ++j) {
        cu = std::min(cu, cw_up[j]);
      }
      if (cu < kInfiniteCost) ups.push_back({b, cu});
    }
    if (downs.empty() || ups.empty()) continue;
    // Pairs with rank(a) < rank(b): the enclosing arc lives in a's up row.
    for (const auto& [a, ca] : downs) {
      uint32_t k = up_off[a];
      const uint32_t kend = up_off[a + 1];
      auto it = ups.begin();
      while (it != ups.end() && k < kend) {
        if (up[k].node < it->first) {
          ++k;
        } else if (it->first < up[k].node) {
          ++it;
        } else {
          const double cost = ca + it->second;
          if (cost < cw_up[k]) {
            cw_up[k] = cost;
            plane->via_up[k] = x;
          }
          const NodeId b = it->first;
          for (++k; k < kend && up[k].node == b; ++k) {
          }
          ++it;
        }
      }
    }
    // Pairs with rank(a) > rank(b): the enclosing arc lives in b's down row.
    for (const auto& [b, cu] : ups) {
      uint32_t k = down_off[b];
      const uint32_t kend = down_off[b + 1];
      auto it = downs.begin();
      while (it != downs.end() && k < kend) {
        if (down[k].node < it->first) {
          ++k;
        } else if (it->first < down[k].node) {
          ++it;
        } else {
          const double cost = it->second + cu;
          if (cost < cw_down[k]) {
            cw_down[k] = cost;
            plane->via_down[k] = x;
          }
          const NodeId a = it->first;
          for (++k; k < kend && down[k].node == a; ++k) {
          }
          ++it;
        }
      }
    }
  }
}

void ChCustomizer::PullNode(NodeId l, const ChClassWeights& weights,
                            ChCustomization* plane) const {
  const auto up = ch_.up_arcs();
  const auto down = ch_.down_arcs();
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  auto& cw_up = plane->cw_up;
  auto& cw_down = plane->cw_down;

  // Base costs for the owned rows.
  for (uint32_t i = up_off[l]; i < up_off[l + 1]; ++i) {
    cw_up[i] =
        up[i].orig == kChShortcutEdge ? kInfiniteCost : Dot(up[i].len, weights);
    plane->via_up[i] = kInvalidNode;
  }
  for (uint32_t i = down_off[l]; i < down_off[l + 1]; ++i) {
    cw_down[i] = down[i].orig == kChShortcutEdge ? kInfiniteCost
                                                 : Dot(down[i].len, weights);
    plane->via_down[i] = kInvalidNode;
  }

  // Up-arc finalization: an up-arc (l -> h) is enclosed by triangles whose
  // apex x has l in its down row (leg l -> x) and h in its up row (leg
  // x -> h). inv_down lists exactly those apexes, ascending by rank — the
  // push sweep's outer order — and strict-< improvement reproduces its
  // lowest-apex tie-break. Only the first record of each target run is
  // relaxed, matching the push merge.
  const double* cw_up_p = cw_up.data();
  const double* cw_down_p = cw_down.data();
  for (uint32_t e = inv_down_offsets_[l]; e < inv_down_offsets_[l + 1]; ++e) {
    const LowerRef& lr = inv_down_entries_[e];
    // min over x's l-run (cost of leg l -> x), run-minima like the push
    // sweep's `downs` collapse.
    double ca = kInfiniteCost;
    for (uint32_t i = lr.run; i < down_off[lr.x + 1] && down[i].node == l;
         ++i) {
      ca = std::min(ca, cw_down_p[i]);
    }
    if (!(ca < kInfiniteCost)) continue;
    uint32_t k = up_off[l];
    const uint32_t kend = up_off[l + 1];
    uint32_t j = up_off[lr.x];
    const uint32_t jend = up_off[lr.x + 1];
    while (k < kend && j < jend) {
      if (up[k].node < up[j].node) {
        ++k;
      } else if (up[j].node < up[k].node) {
        const NodeId h = up[j].node;
        for (++j; j < jend && up[j].node == h; ++j) {
        }
      } else {
        const NodeId h = up[k].node;
        double cu = cw_up_p[j];
        for (++j; j < jend && up[j].node == h; ++j) {
          cu = std::min(cu, cw_up_p[j]);
        }
        if (cu < kInfiniteCost) {
          const double cost = ca + cu;
          if (cost < cw_up[k]) {
            cw_up[k] = cost;
            plane->via_up[k] = lr.x;
          }
        }
        for (++k; k < kend && up[k].node == h; ++k) {
        }
      }
    }
  }

  // Down-arc finalization: a down-arc (h -> l) is enclosed by triangles
  // whose apex x has h in its down row (leg h -> x) and l in its up row
  // (leg x -> l); inv_up lists those apexes.
  for (uint32_t e = inv_up_offsets_[l]; e < inv_up_offsets_[l + 1]; ++e) {
    const LowerRef& lr = inv_up_entries_[e];
    // min over x's l-run in its up row (cost of leg x -> l).
    double cu = kInfiniteCost;
    for (uint32_t i = lr.run; i < up_off[lr.x + 1] && up[i].node == l; ++i) {
      cu = std::min(cu, cw_up_p[i]);
    }
    if (!(cu < kInfiniteCost)) continue;
    uint32_t k = down_off[l];
    const uint32_t kend = down_off[l + 1];
    uint32_t j = down_off[lr.x];
    const uint32_t jend = down_off[lr.x + 1];
    while (k < kend && j < jend) {
      if (down[k].node < down[j].node) {
        ++k;
      } else if (down[j].node < down[k].node) {
        const NodeId h = down[j].node;
        for (++j; j < jend && down[j].node == h; ++j) {
        }
      } else {
        const NodeId h = down[k].node;
        double ca = cw_down_p[j];
        for (++j; j < jend && down[j].node == h; ++j) {
          ca = std::min(ca, cw_down_p[j]);
        }
        if (ca < kInfiniteCost) {
          const double cost = ca + cu;
          if (cost < cw_down[k]) {
            cw_down[k] = cost;
            plane->via_down[k] = lr.x;
          }
        }
        for (++k; k < kend && down[k].node == h; ++k) {
        }
      }
    }
  }
}

void ChCustomizer::RepriceNode(NodeId l, const ChClassWeights& weights,
                               uint8_t changed, ChCustomization* plane) {
  const auto up = ch_.up_arcs();
  const auto down = ch_.down_arcs();
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  auto& cw_up = plane->cw_up;
  auto& cw_down = plane->cw_down;

  // Re-initialize exactly the dirty records (clean ones keep the base
  // plane's bits, which a full sweep would reproduce), remembering which
  // run heads need their candidate scan re-run. Only run heads are ever
  // relaxed — both the push merge and PullNode skip parallel records — so
  // a dirty non-head record is finished right here.
  dirty_heads_up_.clear();
  for (uint32_t i = up_off[l]; i < up_off[l + 1]; ++i) {
    if ((mask_up_[i] & changed) == 0) continue;
    cw_up[i] =
        up[i].orig == kChShortcutEdge ? kInfiniteCost : Dot(up[i].len, weights);
    plane->via_up[i] = kInvalidNode;
    if (i == up_off[l] || up[i - 1].node != up[i].node) {
      dirty_heads_up_.push_back(i);
    }
  }
  dirty_heads_down_.clear();
  for (uint32_t i = down_off[l]; i < down_off[l + 1]; ++i) {
    if ((mask_down_[i] & changed) == 0) continue;
    cw_down[i] = down[i].orig == kChShortcutEdge ? kInfiniteCost
                                                 : Dot(down[i].len, weights);
    plane->via_down[i] = kInvalidNode;
    if (i == down_off[l] || down[i - 1].node != down[i].node) {
      dirty_heads_down_.push_back(i);
    }
  }

  // PullNode's relaxation with the owner's row replaced by the dirty-head
  // subset: same apexes in the same (ascending-rank) order, same run
  // minima, same strict-< improvement — bit-identical where it writes.
  const double* cw_up_p = cw_up.data();
  const double* cw_down_p = cw_down.data();
  if (!dirty_heads_up_.empty()) {
    for (uint32_t e = inv_down_offsets_[l]; e < inv_down_offsets_[l + 1];
         ++e) {
      const LowerRef& lr = inv_down_entries_[e];
      double ca = kInfiniteCost;
      for (uint32_t i = lr.run; i < down_off[lr.x + 1] && down[i].node == l;
           ++i) {
        ca = std::min(ca, cw_down_p[i]);
      }
      if (!(ca < kInfiniteCost)) continue;
      size_t t = 0;
      uint32_t j = up_off[lr.x];
      const uint32_t jend = up_off[lr.x + 1];
      while (t < dirty_heads_up_.size() && j < jend) {
        const uint32_t k = dirty_heads_up_[t];
        if (up[k].node < up[j].node) {
          ++t;
        } else if (up[j].node < up[k].node) {
          const NodeId h = up[j].node;
          for (++j; j < jend && up[j].node == h; ++j) {
          }
        } else {
          const NodeId h = up[k].node;
          double cu = cw_up_p[j];
          for (++j; j < jend && up[j].node == h; ++j) {
            cu = std::min(cu, cw_up_p[j]);
          }
          if (cu < kInfiniteCost) {
            const double cost = ca + cu;
            if (cost < cw_up[k]) {
              cw_up[k] = cost;
              plane->via_up[k] = lr.x;
            }
          }
          ++t;
        }
      }
    }
  }

  if (!dirty_heads_down_.empty()) {
    for (uint32_t e = inv_up_offsets_[l]; e < inv_up_offsets_[l + 1]; ++e) {
      const LowerRef& lr = inv_up_entries_[e];
      double cu = kInfiniteCost;
      for (uint32_t i = lr.run; i < up_off[lr.x + 1] && up[i].node == l; ++i) {
        cu = std::min(cu, cw_up_p[i]);
      }
      if (!(cu < kInfiniteCost)) continue;
      size_t t = 0;
      uint32_t j = down_off[lr.x];
      const uint32_t jend = down_off[lr.x + 1];
      while (t < dirty_heads_down_.size() && j < jend) {
        const uint32_t k = dirty_heads_down_[t];
        if (down[k].node < down[j].node) {
          ++t;
        } else if (down[j].node < down[k].node) {
          const NodeId h = down[j].node;
          for (++j; j < jend && down[j].node == h; ++j) {
          }
        } else {
          const NodeId h = down[k].node;
          double ca = cw_down_p[j];
          for (++j; j < jend && down[j].node == h; ++j) {
            ca = std::min(ca, cw_down_p[j]);
          }
          if (ca < kInfiniteCost) {
            const double cost = ca + cu;
            if (cost < cw_down[k]) {
              cw_down[k] = cost;
              plane->via_down[k] = lr.x;
            }
          }
          ++t;
        }
      }
    }
  }
}

void ChCustomizer::CustomizeParallel(const ChClassWeights& weights,
                                     ChCustomization* plane) {
  EnsurePull();
  const size_t num_levels = level_offsets_.size() - 1;
  const int workers = std::max(1, threads_);
  if (workers == 1) {
    // Single-worker pull: no barrier needed, level order is rank order
    // within each level and reads only ever touch finished lower levels.
    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
      for (uint32_t i = level_offsets_[lvl]; i < level_offsets_[lvl + 1];
           ++i) {
        PullNode(level_order_[i], weights, plane);
      }
    }
    return;
  }
  std::barrier barrier(workers);
  auto worker_fn = [&](int w) {
    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
      const uint32_t begin = level_offsets_[lvl];
      const uint32_t end = level_offsets_[lvl + 1];
      const uint32_t span = end - begin;
      // Contiguous per-worker chunk: writes are confined to owned rows, so
      // any disjoint partition is race-free and bit-identical.
      const uint32_t lo = begin + static_cast<uint32_t>(
                                      static_cast<uint64_t>(span) * w / workers);
      const uint32_t hi =
          begin + static_cast<uint32_t>(static_cast<uint64_t>(span) * (w + 1) /
                                        workers);
      for (uint32_t i = lo; i < hi; ++i) {
        PullNode(level_order_[i], weights, plane);
      }
      barrier.arrive_and_wait();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : pool) t.join();
}

std::shared_ptr<const ChCustomization> ChCustomizer::Customize(
    const ChClassWeights& weights) {
  EnsureOrder();
  auto plane = std::make_shared<ChCustomization>();
  plane->weights = weights;
  plane->cw_up.resize(ch_.NumUpArcs());
  plane->cw_down.resize(ch_.NumDownArcs());
  plane->via_up.assign(ch_.NumUpArcs(), kInvalidNode);
  plane->via_down.assign(ch_.NumDownArcs(), kInvalidNode);
  if (threads_ <= 0) {
    CustomizeSerial(weights, plane.get());
  } else {
    CustomizeParallel(weights, plane.get());
  }
  return plane;
}

std::shared_ptr<const ChCustomization> ChCustomizer::CustomizeFrom(
    std::shared_ptr<const ChCustomization> base, const ChClassWeights& weights,
    bool* incremental) {
  if (incremental != nullptr) *incremental = false;
  if (base == nullptr) return Customize(weights);
  const uint8_t changed = ChangedClasses(base->weights, weights);
  if (changed == 0) return base;
  // A full-vector delta dirties everything; skip the mask machinery (and
  // its one-time build) entirely.
  if (std::popcount(changed) >= kChNumClasses) return Customize(weights);
  EnsureMasks();
  // When the dirty records cover most of the plane the memcpy + per-record
  // skip checks only add overhead, so hand off to the (possibly parallel)
  // full sweep.
  if (2 * dirty_arcs_by_mask_[changed] > total_arcs()) {
    return Customize(weights);
  }
  auto plane = std::make_shared<ChCustomization>();
  plane->weights = weights;
  plane->cw_up = base->cw_up;
  plane->cw_down = base->cw_down;
  plane->via_up = base->via_up;
  plane->via_down = base->via_down;
  // Re-price exactly the records whose class closure intersects the delta,
  // owners in ascending rank. Clean records keep `base`'s bits, which
  // equal what a full sweep under the new weights would produce (every
  // quantity entering a clean arc's min is mask-invariant); dirty records
  // are recomputed from scratch and their candidate scans read a mix of
  // clean (unchanged, valid) and lower dirty (already re-priced) rows — so
  // the result is bit-identical to Customize().
  const size_t n = ch_.NumNodes();
  for (size_t r = 0; r < n; ++r) {
    const NodeId l = order_[r];
    if ((node_mask_[l] & changed) == 0) continue;
    RepriceNode(l, weights, changed, plane.get());
  }
  if (incremental != nullptr) *incremental = true;
  return plane;
}

ChCustomizationCache::ChCustomizationCache(const ChIndex& ch, int threads,
                                           size_t max_planes)
    : ch_(ch),
      max_planes_(std::max<size_t>(1, max_planes)),
      customizer_(ch, threads),
      table_(std::make_shared<const Table>()) {}

namespace {

uint64_t WeightsDigest(const ChClassWeights& w) {
  // splitmix64 over the raw bit patterns; exact-equality verification on
  // probe makes collisions harmless (they only force a second compare).
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (int c = 0; c < kChNumClasses; ++c) {
    uint64_t x = std::bit_cast<uint64_t>(w.w[c]);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    h = (h ^ x) * 0xFF51AFD7ED558CCDull;
  }
  return h;
}

}  // namespace

std::shared_ptr<const ChCustomizationCache::Table>
ChCustomizationCache::SnapshotTable() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return table_;  // copy under the lock; callers scan the snapshot lock-free
}

std::shared_ptr<const ChCustomization> ChCustomizationCache::Get(
    const ChClassWeights& weights, bool* built) {
  if (built != nullptr) *built = false;
  const uint64_t digest = WeightsDigest(weights);
  // Read path: one short-critical-section pointer copy pins an immutable
  // table snapshot (publication can proceed concurrently; this reader keeps
  // its snapshot and the planes inside it alive by refcount).
  {
    std::shared_ptr<const Table> snap = SnapshotTable();
    for (const Entry& e : *snap) {
      if (e.digest == digest && SameWeights(e.plane->weights, weights)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (hits_mirror_ != nullptr) hits_mirror_->Add();
        return e.plane;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (misses_mirror_ != nullptr) misses_mirror_->Add();
  // Build path: one mutex serializes builds, so concurrent misses for the
  // same bucket collapse into a single sweep — the (N-1)/N dedup.
  std::lock_guard<std::mutex> lock(build_mu_);
  std::shared_ptr<const Table> snap = SnapshotTable();
  for (const Entry& e : *snap) {
    if (e.digest == digest && SameWeights(e.plane->weights, weights)) {
      return e.plane;  // someone built it while we waited
    }
  }
  bool incremental = false;
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const ChCustomization> plane =
      customizer_.CustomizeFrom(last_built_, weights, &incremental);
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  builds_.fetch_add(1, std::memory_order_relaxed);
  if (builds_mirror_ != nullptr) builds_mirror_->Add();
  if (customize_ns_ != nullptr) customize_ns_->Record(ns);
  if (incremental) {
    incremental_.fetch_add(1, std::memory_order_relaxed);
    if (incremental_mirror_ != nullptr) incremental_mirror_->Add();
  }
  last_built_ = plane;
  if (built != nullptr) *built = true;
  // Publish: copy-on-write successor table (oldest-first eviction keeps the
  // table bounded; evicted planes stay alive while any reader holds them).
  auto next = std::make_shared<Table>(*snap);
  next->push_back({digest, plane});
  if (next->size() > max_planes_) next->erase(next->begin());
  {
    std::lock_guard<std::mutex> publish(table_mu_);
    table_ = std::shared_ptr<const Table>(std::move(next));
  }
  return plane;
}

size_t ChCustomizationCache::size() const { return SnapshotTable()->size(); }

void ChCustomizationCache::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    hits_mirror_ = nullptr;
    misses_mirror_ = nullptr;
    builds_mirror_ = nullptr;
    incremental_mirror_ = nullptr;
    customize_ns_ = nullptr;
    return;
  }
  hits_mirror_ = registry->GetCounter("ch.cache.hits", "plane fetches");
  misses_mirror_ = registry->GetCounter("ch.cache.misses", "plane fetches");
  builds_mirror_ = registry->GetCounter("ch.cache.builds", "sweeps");
  incremental_mirror_ =
      registry->GetCounter("ch.customize_incremental", "sweeps");
  customize_ns_ = registry->GetHistogram("ch.customize_ns", "ns");
}

}  // namespace ecocharge
