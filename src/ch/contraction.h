#ifndef ECOCHARGE_CH_CONTRACTION_H_
#define ECOCHARGE_CH_CONTRACTION_H_

#include <cstdint>
#include <memory>

#include "ch/ch_index.h"
#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief What the contraction did (CLI/bench reporting).
struct ChBuildStats {
  uint64_t shortcuts = 0;        ///< triangle-closure arcs added
  uint64_t ordering_pops = 0;    ///< lazy-queue pops (incl. reinsertions)
  uint64_t max_live_degree = 0;  ///< largest in+out degree when contracted
};

/// \brief Contracts `network` into a metric-independent ChIndex.
///
/// Node order nests a greedy heuristic inside a geometric nested
/// dissection. A recursive median bisection of the node coordinates
/// assigns every node the depth at which it joined a cell-boundary
/// separator; the lazy-update priority queue then orders by dissection
/// level first (deeper cells contract before the separators that enclose
/// them — the guarantee that keeps fill near-linear on planar-like road
/// networks) and by `2 * edge_difference + deleted_neighbors` within a
/// level. A popped node's priority is recomputed (one simulated
/// contraction) and the node reinserted when it no longer beats the queue
/// head; in near-clique separator remnants the edge difference is
/// approximated by the pair count so a pop stays sub-quadratic.
/// Contracting node x inserts one
/// shortcut (a -> b) for every live in/out neighbor pair not already
/// adjacent, which keeps the arc set closed under lower triangles — the
/// property ChQuery's customization sweep needs to price the hierarchy for
/// an arbitrary per-class weight vector after the fact.
///
/// Shortcuts deliberately carry no static weight. The derouting metric's
/// class weights move independently in [1, 1/min_speed_factor] per class,
/// so a witness path could only ever suppress a shortcut by dominating the
/// candidate on that entire weight box at once; on mixed-class networks
/// that essentially never holds, and the weight-incomparable shortcut
/// variants pile up into parallel Pareto sets whose in x out pairing makes
/// the fill quadratic (measured on the grid generator — see DESIGN.md §14).
/// The unweighted elimination closure stays sparse under the same ordering
/// heuristics and defers all weighting to customization.
///
/// Deterministic: ties in the priority queue break on node id, and each CSR
/// row is emitted sorted by far endpoint (parallel originals by EdgeId).
Result<std::shared_ptr<ChIndex>> BuildChIndex(const RoadNetwork& network,
                                              ChBuildStats* stats = nullptr);

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CONTRACTION_H_
