#include "ch/ch_profile.h"

#include <algorithm>
#include <cassert>

namespace ecocharge {

namespace {

constexpr uint32_t kNoParentArc = ChProfileQuery::kNoArcRef;

}  // namespace

ChProfileQuery::ChProfileQuery(const ChIndex& ch) : ch_(ch) {}

void ChProfileQuery::SetPlanes(
    std::span<const std::shared_ptr<const ChCustomization>> planes) {
  planes_.assign(planes.begin(), planes.end());
  lane_up_.clear();
  lane_down_.clear();
  for (const auto& p : planes_) {
    assert(p != nullptr && p->cw_up.size() == ch_.NumUpArcs() &&
           p->cw_down.size() == ch_.NumDownArcs());
    lane_up_.push_back(p->cw_up.data());
    lane_down_.push_back(p->cw_down.data());
  }
}

void ChProfileQuery::EnsureElimTree() {
  if (!parent_.empty()) return;
  parent_ = ChElimTreeParents(ch_);
  pos_.assign(ch_.NumNodes(), 0);
  pos_stamp_.assign(ch_.NumNodes(), 0);
}

bool ChProfileQuery::BuildSpace(NodeId v, SweepDirection dir,
                                ChProfileSpace* out) {
  const size_t lanes = planes_.size();
  assert(lanes > 0 && "SetPlanes before BuildSpace");
  assert(v < ch_.NumNodes());
  EnsureElimTree();
  if (++space_epoch_ == 0) {
    std::fill(pos_stamp_.begin(), pos_stamp_.end(), 0);
    space_epoch_ = 1;
  }
  out->source = v;
  out->forward = dir == SweepDirection::kForward;
  out->lanes = lanes;
  out->chain.clear();
  for (NodeId x = v; x != kInvalidNode; x = parent_[x]) {
    pos_[x] = static_cast<uint32_t>(out->chain.size());
    pos_stamp_[x] = space_epoch_;
    out->chain.push_back(x);
  }
  const size_t len = out->chain.size();
  out->dist.assign(len * lanes, kInfiniteCost);
  out->pred_arc.assign(len * lanes, kNoParentArc);
  out->pred_pos.assign(len * lanes, 0);
  for (size_t j = 0; j < lanes; ++j) out->dist[j] = 0.0;
  // One in-order chain pass, all lanes in the inner loop. Per lane this
  // executes exactly the single-plane relaxation sequence (same positions,
  // same arcs, same comparisons on the same doubles), so each lane's
  // labels are bit-identical to a per-plane ChQuery::BuildSpace. The
  // single-plane builder tolerates an off-chain target when its one plane
  // prices the arc infinite; here the arc is skipped only if EVERY live
  // lane prices it infinite — a conservative superset, failure (false)
  // just means the caller falls back, never a wrong value.
  const auto up_off = ch_.up_offsets();
  const auto down_off = ch_.down_offsets();
  for (size_t i = 0; i < len; ++i) {
    const double* di = out->dist.data() + i * lanes;
    const NodeId x = out->chain[i];
    const uint32_t row_begin = out->forward ? up_off[x] : down_off[x];
    const uint32_t row_end = out->forward ? up_off[x + 1] : down_off[x + 1];
    const auto arcs = out->forward ? ch_.UpArcs(x) : ch_.DownArcs(x);
    const auto& lane_cw = out->forward ? lane_up_ : lane_down_;
    for (uint32_t a = row_begin; a < row_end; ++a) {
      const size_t k = a - row_begin;
      const NodeId y = arcs[k].node;
      // Does any lane actually relax through this arc?
      bool live = false;
      for (size_t j = 0; j < lanes; ++j) {
        if (di[j] < kInfiniteCost && lane_cw[j][a] < kInfiniteCost) {
          live = true;
          break;
        }
      }
      if (!live) continue;
      if (pos_stamp_[y] != space_epoch_) return false;
      const uint32_t jpos = pos_[y];
      double* dy = out->dist.data() + jpos * lanes;
      uint32_t* pa = out->pred_arc.data() + jpos * lanes;
      uint32_t* pp = out->pred_pos.data() + jpos * lanes;
      const uint32_t ref = out->forward ? ch_.UpRef(x, k) : ch_.DownRef(x, k);
      for (size_t j = 0; j < lanes; ++j) {
        const double d = di[j];
        if (!(d < kInfiniteCost)) continue;
        const double w = lane_cw[j][a];
        if (!(w < kInfiniteCost)) continue;
        const double nd = d + w;
        if (nd < dy[j]) {
          dy[j] = nd;
          pa[j] = ref;
          pp[j] = static_cast<uint32_t>(i);
        }
      }
    }
  }
  return true;
}

void ChProfileQuery::MeetSpaces(const ChProfileSpace& fwd,
                                const ChProfileSpace& bwd,
                                std::span<double> dist,
                                std::span<uint32_t> fpos,
                                std::span<uint32_t> bpos) const {
  const size_t lanes = planes_.size();
  assert(fwd.lanes == lanes && bwd.lanes == lanes);
  assert(dist.size() == lanes && fpos.size() == lanes && bpos.size() == lanes);
  // Same common-suffix scan as ChQuery::MeetSpaces, carried per lane: ties
  // keep the deepest node (first improvement in the ascending-k scan).
  const size_t fn = fwd.chain.size();
  const size_t bn = bwd.chain.size();
  size_t l = 0;
  while (l < fn && l < bn && fwd.chain[fn - 1 - l] == bwd.chain[bn - 1 - l]) {
    ++l;
  }
  for (size_t j = 0; j < lanes; ++j) dist[j] = kInfiniteCost;
  for (size_t k = 0; k < l; ++k) {
    const size_t fi = fn - l + k;
    const size_t bj = bn - l + k;
    const double* fd = fwd.dist.data() + fi * lanes;
    const double* bd = bwd.dist.data() + bj * lanes;
    for (size_t j = 0; j < lanes; ++j) {
      const double sum = fd[j] + bd[j];
      if (sum < dist[j]) {
        dist[j] = sum;
        fpos[j] = static_cast<uint32_t>(fi);
        bpos[j] = static_cast<uint32_t>(bj);
      }
    }
  }
}

void ChProfileQuery::UnpackMeet(const ChProfileSpace& fwd, uint32_t fpos,
                                const ChProfileSpace& bwd, uint32_t bpos,
                                size_t lane, std::vector<EdgeId>* out) {
  out->clear();
  const size_t lanes = planes_.size();
  const ChCustomization& plane = *planes_[lane];
  // Upward half: predecessor chain runs meet -> source; collect and
  // reverse so the expansion emits edges in source -> meet order.
  path_items_.clear();
  for (uint32_t p = fpos; fwd.pred_arc[p * lanes + lane] != kNoParentArc;
       p = fwd.pred_pos[p * lanes + lane]) {
    path_items_.push_back({fwd.pred_arc[p * lanes + lane],
                           fwd.chain[fwd.pred_pos[p * lanes + lane]],
                           fwd.chain[p]});
  }
  std::reverse(path_items_.begin(), path_items_.end());
  for (const ChUnpackItem& item : path_items_) {
    ChExpandItem(ch_, plane, item, &unpack_stack_, out);
  }
  // Downward half: each predecessor arc already runs chain[p] ->
  // chain[pred_pos[p]] in forward orientation, walking meet -> target.
  for (uint32_t p = bpos; bwd.pred_arc[p * lanes + lane] != kNoParentArc;
       p = bwd.pred_pos[p * lanes + lane]) {
    ChExpandItem(ch_, plane,
                 {bwd.pred_arc[p * lanes + lane], bwd.chain[p],
                  bwd.chain[bwd.pred_pos[p * lanes + lane]]},
                 &unpack_stack_, out);
  }
}

}  // namespace ecocharge
