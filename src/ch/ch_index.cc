#include "ch/ch_index.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "graph/io.h"

namespace ecocharge {

static_assert(sizeof(ChArc) == kChSnapshotArcBytes,
              "ChArc layout must match the snapshot record size");

namespace {

Status CheckOffsets(std::span<const uint32_t> offsets, size_t n,
                    size_t arc_count, const char* what) {
  if (offsets.size() != n + 1) {
    return Status::InvalidArgument(std::string(what) +
                                   " offsets size != nodes+1");
  }
  if (offsets[0] != 0 || offsets[n] != arc_count) {
    return Status::InvalidArgument(std::string(what) +
                                   " offsets do not cover the arc array");
  }
  for (size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(std::string(what) +
                                     " offsets not monotone");
    }
  }
  return Status::OK();
}

Status CheckArcs(std::span<const uint32_t> offsets, std::span<const ChArc> arcs,
                 size_t n, uint64_t num_edges, const char* what) {
  for (const ChArc& a : arcs) {
    if (a.node >= n) {
      return Status::InvalidArgument(std::string(what) +
                                     " arc endpoint out of range");
    }
    if (a.orig != kChShortcutEdge && a.orig >= num_edges) {
      return Status::InvalidArgument(std::string(what) +
                                     " original edge id out of range");
    }
  }
  // Rows must be sorted by far endpoint — customization and unpacking
  // binary-search them.
  for (size_t v = 0; v < n; ++v) {
    for (size_t i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
      if (arcs[i - 1].node > arcs[i].node) {
        return Status::InvalidArgument(std::string(what) +
                                       " row not sorted by neighbor");
      }
    }
  }
  return Status::OK();
}

size_t FindInRow(std::span<const ChArc> row, NodeId node) {
  const auto it =
      std::lower_bound(row.begin(), row.end(), node,
                       [](const ChArc& a, NodeId n) { return a.node < n; });
  if (it == row.end() || it->node != node) return SIZE_MAX;
  return static_cast<size_t>(it - row.begin());
}

}  // namespace

size_t ChIndex::FindUpArc(NodeId v, NodeId to) const {
  const size_t i = FindInRow(UpArcs(v), to);
  return i == SIZE_MAX ? SIZE_MAX : up_offsets_[v] + i;
}

size_t ChIndex::FindDownArc(NodeId v, NodeId from) const {
  const size_t i = FindInRow(DownArcs(v), from);
  return i == SIZE_MAX ? SIZE_MAX : down_offsets_[v] + i;
}

Result<std::shared_ptr<ChIndex>> ChIndex::FromViews(Views views,
                                                    uint64_t num_graph_edges) {
  const size_t n = views.rank.size();
  if (n == 0) return Status::InvalidArgument("ch index over empty graph");
  ECOCHARGE_RETURN_NOT_OK(
      CheckOffsets(views.up_offsets, n, views.up_arcs.size(), "ch up"));
  ECOCHARGE_RETURN_NOT_OK(
      CheckOffsets(views.down_offsets, n, views.down_arcs.size(), "ch down"));
  ECOCHARGE_RETURN_NOT_OK(CheckArcs(views.up_offsets, views.up_arcs, n,
                                    num_graph_edges, "ch up"));
  ECOCHARGE_RETURN_NOT_OK(CheckArcs(views.down_offsets, views.down_arcs, n,
                                    num_graph_edges, "ch down"));
  for (uint32_t r : views.rank) {
    if (r >= n) return Status::InvalidArgument("ch rank out of range");
  }
  auto ch = std::shared_ptr<ChIndex>(new ChIndex());
  ch->rank_ = views.rank;
  ch->up_offsets_ = views.up_offsets;
  ch->up_arcs_ = views.up_arcs;
  ch->down_offsets_ = views.down_offsets;
  ch->down_arcs_ = views.down_arcs;
  ch->backing_ = std::move(views.backing);
  return ch;
}

ChSnapshotViews ToSnapshotViews(std::shared_ptr<const ChIndex> ch) {
  ChSnapshotViews views;
  views.rank = ch->rank_array();
  views.up_offsets = ch->up_offsets();
  views.down_offsets = ch->down_offsets();
  views.up_arcs = std::as_bytes(ch->up_arcs());
  views.down_arcs = std::as_bytes(ch->down_arcs());
  views.backing = std::move(ch);
  return views;
}

Result<std::shared_ptr<ChIndex>> ChIndexFromSnapshot(
    const ChSnapshotViews& snapshot, uint64_t num_graph_edges) {
  if (snapshot.up_arcs.size() % sizeof(ChArc) != 0 ||
      snapshot.down_arcs.size() % sizeof(ChArc) != 0) {
    return Status::InvalidArgument("ch arc section not a whole arc count");
  }
  // mmap-ed sections are 64-byte aligned, comfortably above alignof(ChArc);
  // guard against hand-built views anyway.
  if (reinterpret_cast<uintptr_t>(snapshot.up_arcs.data()) % alignof(ChArc) !=
          0 ||
      reinterpret_cast<uintptr_t>(snapshot.down_arcs.data()) %
              alignof(ChArc) !=
          0) {
    return Status::InvalidArgument("ch arc section misaligned");
  }
  ChIndex::Views views;
  views.rank = snapshot.rank;
  views.up_offsets = snapshot.up_offsets;
  views.down_offsets = snapshot.down_offsets;
  views.up_arcs = std::span<const ChArc>(
      reinterpret_cast<const ChArc*>(snapshot.up_arcs.data()),
      snapshot.up_arcs.size() / sizeof(ChArc));
  views.down_arcs = std::span<const ChArc>(
      reinterpret_cast<const ChArc*>(snapshot.down_arcs.data()),
      snapshot.down_arcs.size() / sizeof(ChArc));
  views.backing = snapshot.backing;
  return ChIndex::FromViews(std::move(views), num_graph_edges);
}

}  // namespace ecocharge
