#ifndef ECOCHARGE_CH_CH_INDEX_H_
#define ECOCHARGE_CH_CH_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

struct ChSnapshotViews;  // graph/io.h

/// Sentinel in ChArc::orig marking a contraction shortcut (no original edge).
inline constexpr EdgeId kChShortcutEdge = 0xFFFFFFFFu;

/// Sentinel packed arc reference ("no arc").
inline constexpr uint32_t kChNoArc = 0xFFFFFFFFu;

/// Number of RoadClass values; original arcs store one length per class.
inline constexpr int kChNumClasses = 3;

/// \brief One arc of the contraction hierarchy's search graphs.
///
/// Stored in the upward CSR of its lower-ranked tail (forward search) or the
/// downward CSR of its lower-ranked head (backward search), sorted by the far
/// endpoint within each row so customization and unpacking can binary-search
/// for a specific neighbor.
///
/// The hierarchy's topology is metric-independent: an original arc carries
/// its length decomposed by road class (the derouting metric at any traffic
/// instant is `sum_c len[c] / speed_factor(c, tau)`), while a shortcut
/// (`orig == kChShortcutEdge`) carries no static weight at all — its cost
/// under the query-time class weights is produced by ChQuery's customization
/// pass, which also records the middle node used for unpacking. One
/// contraction therefore serves every time bucket exactly. The layout is
/// fixed and trivially copyable — snapshots mmap these records directly
/// (graph/io.h kSectionChUpArcs/DownArcs).
struct ChArc {
  NodeId node = kInvalidNode;     ///< far (higher-ranked) endpoint
  EdgeId orig = kChShortcutEdge;  ///< forward EdgeId, or kChShortcutEdge
  double len[kChNumClasses] = {0.0, 0.0, 0.0};  ///< meters per road class

  /// Scalar geometric length (the uniform-weight metric); 0 for shortcuts.
  double TotalLength() const { return len[0] + len[1] + len[2]; }
};

static_assert(sizeof(ChArc) == 32, "ChArc is a fixed snapshot record");
static_assert(std::is_trivially_copyable_v<ChArc>, "ChArc must be mmap-able");

/// \brief Immutable contraction hierarchy over one RoadNetwork.
///
/// Holds the contraction rank of every node plus two CSR search graphs:
/// `UpArcs(v)` are arcs from v to higher-ranked nodes (relaxed by the
/// forward search), `DownArcs(v)` are arcs from higher-ranked nodes into v
/// (relaxed, reversed, by the backward search). Every arc of the original
/// graph plus every shortcut appears in exactly one of the two, and the
/// shortcut set is closed under triangles: if arcs (a -> x) and (x -> b)
/// exist with x ranked below both, so does (a -> b). That closure is what
/// lets ChQuery customize the hierarchy for arbitrary class weights with a
/// single bottom-up sweep.
///
/// All array members are read-only views backed either by owned vectors
/// (contraction path) or an mmap-ed snapshot (zero-copy load path), the
/// same ownership scheme as RoadNetwork. Query state lives in ChQuery so
/// one index can be shared read-only across workers.
class ChIndex {
 public:
  /// High bit of a packed arc reference: set = index into the downward arc
  /// array, clear = index into the upward arc array.
  static constexpr uint32_t kDownBit = 0x80000000u;

  /// Storage bundle used by the builder and the snapshot loader. `backing`
  /// keeps whatever owns the bytes (vectors or an mmap region) alive.
  struct Views {
    std::span<const uint32_t> rank;          ///< size nodes
    std::span<const uint32_t> up_offsets;    ///< size nodes+1
    std::span<const ChArc> up_arcs;
    std::span<const uint32_t> down_offsets;  ///< size nodes+1
    std::span<const ChArc> down_arcs;
    std::shared_ptr<const void> backing;
  };

  /// Validates view consistency (offset monotonicity, arc endpoints,
  /// per-row neighbor ordering, original-edge ids against
  /// `num_graph_edges`) and wraps the bundle. Used by BuildChIndex and the
  /// snapshot loader.
  static Result<std::shared_ptr<ChIndex>> FromViews(Views views,
                                                    uint64_t num_graph_edges);

  size_t NumNodes() const { return rank_.size(); }
  size_t NumUpArcs() const { return up_arcs_.size(); }
  size_t NumDownArcs() const { return down_arcs_.size(); }

  uint32_t rank(NodeId v) const { return rank_[v]; }

  /// Arcs from `v` to higher-ranked nodes (forward-search adjacency),
  /// sorted by head node.
  std::span<const ChArc> UpArcs(NodeId v) const {
    return up_arcs_.subspan(up_offsets_[v], up_offsets_[v + 1] - up_offsets_[v]);
  }

  /// Arcs from higher-ranked nodes into `v` (backward-search adjacency;
  /// `ChArc::node` is the arc's source), sorted by source node.
  std::span<const ChArc> DownArcs(NodeId v) const {
    return down_arcs_.subspan(down_offsets_[v],
                              down_offsets_[v + 1] - down_offsets_[v]);
  }

  /// Resolves a packed reference (kDownBit selects the array).
  const ChArc& arc(uint32_t ref) const {
    return (ref & kDownBit) != 0 ? down_arcs_[ref & ~kDownBit] : up_arcs_[ref];
  }

  /// Global packed reference of `UpArcs(v)[i]` / `DownArcs(v)[i]`.
  uint32_t UpRef(NodeId v, size_t i) const {
    return up_offsets_[v] + static_cast<uint32_t>(i);
  }
  uint32_t DownRef(NodeId v, size_t i) const {
    return kDownBit | (down_offsets_[v] + static_cast<uint32_t>(i));
  }

  /// First index into `UpArcs(v)` whose head is `to`, or SIZE_MAX. Parallel
  /// original arcs share a head; callers scan forward across the run.
  size_t FindUpArc(NodeId v, NodeId to) const;
  /// First index into `DownArcs(v)` whose source is `from`, or SIZE_MAX.
  size_t FindDownArc(NodeId v, NodeId from) const;

  // Raw array views, exposed for snapshot serialization (graph/io.cc
  // treats the arc arrays as opaque fixed-size records).
  std::span<const uint32_t> rank_array() const { return rank_; }
  std::span<const uint32_t> up_offsets() const { return up_offsets_; }
  std::span<const ChArc> up_arcs() const { return up_arcs_; }
  std::span<const uint32_t> down_offsets() const { return down_offsets_; }
  std::span<const ChArc> down_arcs() const { return down_arcs_; }

 private:
  ChIndex() = default;

  std::span<const uint32_t> rank_;
  std::span<const uint32_t> up_offsets_;
  std::span<const ChArc> up_arcs_;
  std::span<const uint32_t> down_offsets_;
  std::span<const ChArc> down_arcs_;
  std::shared_ptr<const void> backing_;
};

/// Snapshot-section views of `ch`'s arrays (graph/io.h SaveSnapshot input).
/// The returned views share ownership of the index, so they stay valid even
/// if the caller drops its own reference.
ChSnapshotViews ToSnapshotViews(std::shared_ptr<const ChIndex> ch);

/// Rehydrates a ChIndex from mmap-ed snapshot views — zero-copy: the index
/// aliases the mapping (kept alive via `views.backing`) and runs the same
/// validation as FromViews, so a corrupt section cannot reach the query
/// kernel.
Result<std::shared_ptr<ChIndex>> ChIndexFromSnapshot(
    const ChSnapshotViews& views, uint64_t num_graph_edges);

}  // namespace ecocharge

#endif  // ECOCHARGE_CH_CH_INDEX_H_
