#include "graph/route.h"

#include <algorithm>

namespace ecocharge {

Result<RouteMetrics> ResolveRoute(const RoadNetwork& network,
                                  const std::vector<NodeId>& nodes) {
  RouteMetrics metrics;
  if (nodes.size() < 2) return metrics;  // a point (or empty) route
  metrics.edges.reserve(nodes.size() - 1);
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1] >= network.NumNodes() ||
        nodes[i] >= network.NumNodes()) {
      return Status::InvalidArgument("route node out of range");
    }
    EdgeId best = 0;
    double best_length = kInfiniteCost;
    for (EdgeId e : network.OutEdges(nodes[i - 1])) {
      if (network.edge(e).to == nodes[i] &&
          network.edge(e).length_m < best_length) {
        best = e;
        best_length = network.edge(e).length_m;
      }
    }
    if (best_length == kInfiniteCost) {
      return Status::InvalidArgument(
          "route nodes " + std::to_string(nodes[i - 1]) + " -> " +
          std::to_string(nodes[i]) + " are not adjacent");
    }
    const Edge& edge = network.edge(best);
    metrics.edges.push_back(best);
    metrics.length_m += edge.length_m;
    metrics.free_flow_s += edge.FreeFlowSeconds();
  }
  return metrics;
}

Polyline RouteGeometry(const RoadNetwork& network,
                       const std::vector<NodeId>& nodes) {
  Polyline line;
  for (NodeId v : nodes) {
    if (v < network.NumNodes()) line.Append(network.NodePosition(v));
  }
  return line;
}

double CongestedTravelSeconds(
    const RoadNetwork& network, const RouteMetrics& route,
    const std::function<double(const Edge&)>& speed_factor) {
  double total = 0.0;
  for (EdgeId e : route.edges) {
    const Edge& edge = network.edge(e);
    double factor = std::clamp(speed_factor(edge), 1e-3, 1.0);
    total += edge.FreeFlowSeconds() / factor;
  }
  return total;
}

}  // namespace ecocharge
