#include "graph/route.h"

#include <algorithm>

namespace ecocharge {

Result<RouteMetrics> ResolveRoute(const RoadNetwork& network,
                                  const std::vector<NodeId>& nodes) {
  RouteMetrics metrics;
  if (nodes.size() < 2) return metrics;  // a point (or empty) route
  metrics.edges.reserve(nodes.size() - 1);
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1] >= network.NumNodes() ||
        nodes[i] >= network.NumNodes()) {
      return Status::InvalidArgument("route node out of range");
    }
    // Arcs are sorted by (target, length), so the first arc hitting the
    // target is also the shortest parallel edge.
    auto arcs = network.OutArcs(nodes[i - 1]);
    auto it = std::lower_bound(
        arcs.begin(), arcs.end(), nodes[i],
        [](const Arc& a, NodeId target) { return a.node < target; });
    if (it == arcs.end() || it->node != nodes[i]) {
      return Status::InvalidArgument(
          "route nodes " + std::to_string(nodes[i - 1]) + " -> " +
          std::to_string(nodes[i]) + " are not adjacent");
    }
    EdgeId best = network.FirstOutEdge(nodes[i - 1]) +
                  static_cast<EdgeId>(it - arcs.begin());
    metrics.edges.push_back(best);
    metrics.length_m += it->length_m;
    metrics.free_flow_s += it->FreeFlowSeconds();
  }
  return metrics;
}

Polyline RouteGeometry(const RoadNetwork& network,
                       const std::vector<NodeId>& nodes) {
  Polyline line;
  for (NodeId v : nodes) {
    if (v < network.NumNodes()) line.Append(network.NodePosition(v));
  }
  return line;
}

double CongestedTravelSeconds(
    const RoadNetwork& network, const RouteMetrics& route,
    const std::function<double(const Arc&)>& speed_factor) {
  double total = 0.0;
  for (EdgeId e : route.edges) {
    const Arc& arc = network.arc(e);
    double factor = std::clamp(speed_factor(arc), 1e-3, 1.0);
    total += arc.FreeFlowSeconds() / factor;
  }
  return total;
}

}  // namespace ecocharge
