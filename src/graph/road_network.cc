#include "graph/road_network.h"

#include <algorithm>

namespace ecocharge {

double FreeFlowSpeed(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kHighway:
      return 120.0 / 3.6;  // 120 km/h
    case RoadClass::kArterial:
      return 60.0 / 3.6;  // 60 km/h
    case RoadClass::kLocal:
      return 30.0 / 3.6;  // 30 km/h
  }
  return 30.0 / 3.6;
}

NodeId RoadNetwork::NearestNode(const Point& p) const {
  std::vector<Neighbor> nn = node_locator_.Knn(p, 1);
  return nn.empty() ? kInvalidNode : nn[0].id;
}

bool RoadNetwork::IsStronglyConnected() const {
  if (NumNodes() == 0) return false;
  // Forward and backward BFS from node 0 must both cover all nodes.
  auto bfs = [this](bool forward) {
    std::vector<char> seen(NumNodes(), 0);
    std::vector<NodeId> queue = {0};
    seen[0] = 1;
    size_t count = 1;
    while (!queue.empty()) {
      NodeId v = queue.back();
      queue.pop_back();
      auto edge_ids = forward ? OutEdges(v) : InEdges(v);
      for (EdgeId e : edge_ids) {
        NodeId w = forward ? edges_[e].to : edges_[e].from;
        if (!seen[w]) {
          seen[w] = 1;
          ++count;
          queue.push_back(w);
        }
      }
    }
    return count == NumNodes();
  };
  return bfs(true) && bfs(false);
}

NodeId GraphBuilder::AddNode(const Point& position) {
  positions_.push_back(position);
  return static_cast<NodeId>(positions_.size() - 1);
}

Status GraphBuilder::AddEdge(NodeId from, NodeId to, RoadClass road_class,
                             double length_m) {
  if (from >= positions_.size() || to >= positions_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  Edge e;
  e.from = from;
  e.to = to;
  e.road_class = road_class;
  e.length_m =
      length_m >= 0.0 ? length_m : Distance(positions_[from], positions_[to]);
  if (e.length_m <= 0.0) {
    // Coincident nodes: give the edge a tiny positive length so Dijkstra's
    // non-negativity and strict-progress assumptions hold.
    e.length_m = 0.1;
  }
  edges_.push_back(e);
  return Status::OK();
}

Status GraphBuilder::AddBidirectional(NodeId a, NodeId b, RoadClass road_class,
                                      double length_m) {
  ECOCHARGE_RETURN_NOT_OK(AddEdge(a, b, road_class, length_m));
  return AddEdge(b, a, road_class, length_m);
}

Result<std::shared_ptr<RoadNetwork>> GraphBuilder::Build() {
  if (positions_.empty()) {
    return Status::InvalidArgument("cannot build an empty road network");
  }
  auto network = std::shared_ptr<RoadNetwork>(new RoadNetwork());
  network->positions_ = positions_;
  network->edges_ = edges_;

  size_t n = positions_.size();
  // CSR for outgoing edges.
  network->out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++network->out_offsets_[e.from + 1];
  for (size_t v = 0; v < n; ++v) {
    network->out_offsets_[v + 1] += network->out_offsets_[v];
  }
  network->out_adjacency_.resize(edges_.size());
  {
    std::vector<uint32_t> cursor(network->out_offsets_.begin(),
                                 network->out_offsets_.end() - 1);
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      network->out_adjacency_[cursor[edges_[e].from]++] = e;
    }
  }
  // CSR for incoming edges.
  network->in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++network->in_offsets_[e.to + 1];
  for (size_t v = 0; v < n; ++v) {
    network->in_offsets_[v + 1] += network->in_offsets_[v];
  }
  network->in_adjacency_.resize(edges_.size());
  {
    std::vector<uint32_t> cursor(network->in_offsets_.begin(),
                                 network->in_offsets_.end() - 1);
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      network->in_adjacency_[cursor[edges_[e].to]++] = e;
    }
  }

  for (const Point& p : positions_) network->bounds_.Extend(p);
  network->node_locator_.Build(positions_);
  return network;
}

}  // namespace ecocharge
