#include "graph/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace ecocharge {

double FreeFlowSpeed(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kHighway:
      return 120.0 / 3.6;  // 120 km/h
    case RoadClass::kArterial:
      return 60.0 / 3.6;  // 60 km/h
    case RoadClass::kLocal:
      return 30.0 / 3.6;  // 30 km/h
  }
  return 30.0 / 3.6;
}

Status ValidateGraphCounts(uint64_t num_nodes, uint64_t num_edges) {
  if (num_nodes > kMaxNodeCount) {
    return Status::InvalidArgument(
        "node count " + std::to_string(num_nodes) +
        " overflows 32-bit node ids (max " + std::to_string(kMaxNodeCount) +
        ")");
  }
  if (num_edges > kMaxEdgeCount) {
    return Status::InvalidArgument(
        "edge count " + std::to_string(num_edges) +
        " overflows 32-bit edge ids and CSR offsets (max " +
        std::to_string(kMaxEdgeCount) + ")");
  }
  return Status::OK();
}

namespace {

/// Heap-owned backing for built (non-mmap) networks; Views spans alias
/// these vectors and the shared_ptr keeps them alive.
struct OwnedArrays {
  std::vector<Point> positions;
  std::vector<uint32_t> out_offsets;
  std::vector<Arc> out_arcs;
  std::vector<uint32_t> in_offsets;
  std::vector<Arc> in_arcs;
  std::vector<EdgeId> in_edge_ids;
  std::vector<uint32_t> locator_cell_offsets;
  std::vector<uint32_t> locator_cell_points;
};

/// Canonical adjacency order within one node's slot range: by target id,
/// then length, then class — a total order on the attributes, so the final
/// arrays do not depend on edge emission order.
bool ArcLess(const Arc& a, const Arc& b) {
  if (a.node != b.node) return a.node < b.node;
  if (a.length_m != b.length_m) return a.length_m < b.length_m;
  return static_cast<uint8_t>(a.road_class) < static_cast<uint8_t>(b.road_class);
}

struct LocatorShape {
  uint32_t nx = 1;
  uint32_t ny = 1;
  double cell_m = 1.0;
};

/// Sizes the uniform grid for ~4 nodes per cell, clamped so the cell table
/// never dwarfs the node array.
LocatorShape SizeLocator(const BoundingBox& bounds, size_t num_nodes) {
  LocatorShape shape;
  const double w = std::max(bounds.Width(), 0.0);
  const double h = std::max(bounds.Height(), 0.0);
  double cell;
  if (w > 0.0 && h > 0.0) {
    cell = std::sqrt(w * h * 4.0 / static_cast<double>(num_nodes));
  } else {
    cell = std::max({w, h, 1.0});
  }
  if (!(cell > 0.0)) cell = 1.0;
  auto dims_for = [&](double c) {
    uint64_t nx = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(w / c)));
    uint64_t ny = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(h / c)));
    return std::pair<uint64_t, uint64_t>(nx, ny);
  };
  auto [nx, ny] = dims_for(cell);
  // Extreme aspect ratios can blow up one dimension; grow the cell until
  // the table is proportional to the node count.
  while (nx * ny > 2 * static_cast<uint64_t>(num_nodes) + 64) {
    cell *= 2.0;
    std::tie(nx, ny) = dims_for(cell);
  }
  shape.nx = static_cast<uint32_t>(nx);
  shape.ny = static_cast<uint32_t>(ny);
  shape.cell_m = cell;
  return shape;
}

size_t LocatorCellOf(const Point& p, const BoundingBox& bounds,
                     const LocatorShape& shape) {
  auto clamp_axis = [](double value, uint32_t dim) {
    if (!(value > 0.0)) return uint32_t{0};
    uint32_t cell = static_cast<uint32_t>(value);
    return std::min(cell, dim - 1);
  };
  uint32_t ix = clamp_axis((p.x - bounds.min.x) / shape.cell_m, shape.nx);
  uint32_t iy = clamp_axis((p.y - bounds.min.y) / shape.cell_m, shape.ny);
  return static_cast<size_t>(iy) * shape.nx + ix;
}

/// Counting-sorts node ids by locator cell; within a cell ids stay
/// ascending (the scan order), which NearestNode's tie-break relies on.
void BuildLocator(const std::vector<Point>& positions,
                  const BoundingBox& bounds, const LocatorShape& shape,
                  std::vector<uint32_t>* cell_offsets,
                  std::vector<uint32_t>* cell_points) {
  const size_t cells = static_cast<size_t>(shape.nx) * shape.ny;
  cell_offsets->assign(cells + 1, 0);
  for (const Point& p : positions) {
    ++(*cell_offsets)[LocatorCellOf(p, bounds, shape) + 1];
  }
  for (size_t c = 0; c < cells; ++c) {
    (*cell_offsets)[c + 1] += (*cell_offsets)[c];
  }
  cell_points->resize(positions.size());
  std::vector<uint32_t> cursor(cell_offsets->begin(), cell_offsets->end() - 1);
  for (uint32_t v = 0; v < positions.size(); ++v) {
    (*cell_points)[cursor[LocatorCellOf(positions[v], bounds, shape)]++] = v;
  }
}

/// Completes a network whose forward CSR (positions, out_offsets, out_arcs)
/// is final: derives the backward stream, bounds, and node locator, then
/// wraps everything behind read-only views.
Result<std::shared_ptr<RoadNetwork>> FinishAssembly(
    std::shared_ptr<OwnedArrays> owned) {
  const size_t n = owned->positions.size();
  const size_t m = owned->out_arcs.size();

  // Sort each node's slot range into canonical adjacency order. Edge ids
  // are final after this point.
  for (size_t v = 0; v < n; ++v) {
    std::sort(owned->out_arcs.begin() + owned->out_offsets[v],
              owned->out_arcs.begin() + owned->out_offsets[v + 1], ArcLess);
  }

  // Backward stream, derived from the final forward stream. Scattering in
  // ascending (source, edge id) order leaves every in-list sorted by source
  // id with edge ids as the tie-break — no per-node sort needed.
  owned->in_offsets.assign(n + 1, 0);
  for (const Arc& a : owned->out_arcs) ++owned->in_offsets[a.node + 1];
  for (size_t v = 0; v < n; ++v) {
    owned->in_offsets[v + 1] += owned->in_offsets[v];
  }
  owned->in_arcs.resize(m);
  owned->in_edge_ids.resize(m);
  {
    std::vector<uint32_t> cursor(owned->in_offsets.begin(),
                                 owned->in_offsets.end() - 1);
    for (size_t v = 0; v < n; ++v) {
      for (uint32_t slot = owned->out_offsets[v];
           slot < owned->out_offsets[v + 1]; ++slot) {
        const Arc& a = owned->out_arcs[slot];
        uint32_t islot = cursor[a.node]++;
        owned->in_arcs[islot] =
            Arc{static_cast<NodeId>(v), a.road_class, a.length_m};
        owned->in_edge_ids[islot] = slot;
      }
    }
  }

  BoundingBox bounds;
  for (const Point& p : owned->positions) bounds.Extend(p);
  LocatorShape shape = SizeLocator(bounds, n);
  BuildLocator(owned->positions, bounds, shape, &owned->locator_cell_offsets,
               &owned->locator_cell_points);

  RoadNetwork::Views views;
  views.positions = owned->positions;
  views.out_offsets = owned->out_offsets;
  views.out_arcs = owned->out_arcs;
  views.in_offsets = owned->in_offsets;
  views.in_arcs = owned->in_arcs;
  views.in_edge_ids = owned->in_edge_ids;
  views.bounds = bounds;
  views.locator_nx = shape.nx;
  views.locator_ny = shape.ny;
  views.locator_cell_m = shape.cell_m;
  views.locator_cell_offsets = owned->locator_cell_offsets;
  views.locator_cell_points = owned->locator_cell_points;
  views.backing = std::move(owned);
  return RoadNetwork::FromViews(std::move(views));
}

bool OffsetsValid(std::span<const uint32_t> offsets, size_t total) {
  if (offsets.empty() || offsets.front() != 0) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return offsets.back() == total;
}

}  // namespace

Result<std::shared_ptr<RoadNetwork>> RoadNetwork::FromViews(Views views) {
  const size_t n = views.positions.size();
  const size_t m = views.out_arcs.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot build an empty road network");
  }
  ECOCHARGE_RETURN_NOT_OK(ValidateGraphCounts(n, m));
  if (views.out_offsets.size() != n + 1 || views.in_offsets.size() != n + 1) {
    return Status::InvalidArgument("CSR offset array size mismatch");
  }
  if (views.in_arcs.size() != m || views.in_edge_ids.size() != m) {
    return Status::InvalidArgument("backward stream size mismatch");
  }
  if (!OffsetsValid(views.out_offsets, m) ||
      !OffsetsValid(views.in_offsets, m)) {
    return Status::InvalidArgument("CSR offsets are not monotone to the "
                                   "edge count");
  }
  const size_t cells =
      static_cast<size_t>(views.locator_nx) * views.locator_ny;
  if (cells == 0 || !(views.locator_cell_m > 0.0) ||
      views.locator_cell_offsets.size() != cells + 1 ||
      views.locator_cell_points.size() != n ||
      !OffsetsValid(views.locator_cell_offsets, n)) {
    return Status::InvalidArgument("node locator tables are inconsistent");
  }

  auto network = std::shared_ptr<RoadNetwork>(new RoadNetwork());
  network->positions_ = views.positions;
  network->out_offsets_ = views.out_offsets;
  network->out_arcs_ = views.out_arcs;
  network->in_offsets_ = views.in_offsets;
  network->in_arcs_ = views.in_arcs;
  network->in_edge_ids_ = views.in_edge_ids;
  network->bounds_ = views.bounds;
  network->locator_nx_ = views.locator_nx;
  network->locator_ny_ = views.locator_ny;
  network->locator_cell_m_ = views.locator_cell_m;
  network->locator_cell_offsets_ = views.locator_cell_offsets;
  network->locator_cell_points_ = views.locator_cell_points;
  network->backing_ = std::move(views.backing);
  return network;
}

NodeId RoadNetwork::EdgeSource(EdgeId e) const {
  auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<NodeId>((it - out_offsets_.begin()) - 1);
}

NodeId RoadNetwork::NearestNode(const Point& p) const {
  if (NumNodes() == 0) return kInvalidNode;
  const int64_t nx = locator_nx_;
  const int64_t ny = locator_ny_;
  const double cell = locator_cell_m_;
  auto clamp_axis = [](double value, int64_t dim) {
    if (!(value > 0.0)) return int64_t{0};
    return std::min(static_cast<int64_t>(value), dim - 1);
  };
  const int64_t cx = clamp_axis((p.x - bounds_.min.x) / cell, nx);
  const int64_t cy = clamp_axis((p.y - bounds_.min.y) / cell, ny);

  double best_d2 = std::numeric_limits<double>::infinity();
  NodeId best = kInvalidNode;
  auto scan_cell = [&](int64_t ix, int64_t iy) {
    if (ix < 0 || iy < 0 || ix >= nx || iy >= ny) return;
    const size_t c = static_cast<size_t>(iy) * nx + ix;
    for (uint32_t i = locator_cell_offsets_[c];
         i < locator_cell_offsets_[c + 1]; ++i) {
      const NodeId v = locator_cell_points_[i];
      const double dx = positions_[v].x - p.x;
      const double dy = positions_[v].y - p.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2 || (d2 == best_d2 && v < best)) {
        best_d2 = d2;
        best = v;
      }
    }
  };

  // Expanding ring search. Any node in a cell at Chebyshev ring k lies at
  // least (k-1) cells away from p, so once the best distance beats that
  // bound the search is exact.
  const int64_t max_ring = std::max(nx, ny);
  for (int64_t k = 0; k <= max_ring; ++k) {
    if (best != kInvalidNode) {
      const double bound = static_cast<double>(k - 1) * cell;
      if (bound > 0.0 && bound * bound > best_d2) break;
    }
    if (k == 0) {
      scan_cell(cx, cy);
      continue;
    }
    for (int64_t ix = cx - k; ix <= cx + k; ++ix) {
      scan_cell(ix, cy - k);
      scan_cell(ix, cy + k);
    }
    for (int64_t iy = cy - k + 1; iy <= cy + k - 1; ++iy) {
      scan_cell(cx - k, iy);
      scan_cell(cx + k, iy);
    }
  }
  return best;
}

bool RoadNetwork::IsStronglyConnected() const {
  if (NumNodes() == 0) return false;
  // Forward and backward BFS from node 0 must both cover all nodes.
  auto bfs = [this](bool forward) {
    std::vector<char> seen(NumNodes(), 0);
    std::vector<NodeId> queue = {0};
    seen[0] = 1;
    size_t count = 1;
    while (!queue.empty()) {
      NodeId v = queue.back();
      queue.pop_back();
      auto arcs = forward ? OutArcs(v) : InArcs(v);
      for (const Arc& a : arcs) {
        if (!seen[a.node]) {
          seen[a.node] = 1;
          ++count;
          queue.push_back(a.node);
        }
      }
    }
    return count == NumNodes();
  };
  return bfs(true) && bfs(false);
}

NodeId GraphBuilder::AddNode(const Point& position) {
  positions_.push_back(position);
  return static_cast<NodeId>(positions_.size() - 1);
}

Status GraphBuilder::AddEdge(NodeId from, NodeId to, RoadClass road_class,
                             double length_m) {
  if (from >= positions_.size() || to >= positions_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  Edge e;
  e.from = from;
  e.to = to;
  e.road_class = road_class;
  e.length_m =
      length_m >= 0.0 ? length_m : Distance(positions_[from], positions_[to]);
  if (e.length_m <= 0.0) {
    // Coincident nodes: give the edge a tiny positive length so Dijkstra's
    // non-negativity and strict-progress assumptions hold.
    e.length_m = 0.1;
  }
  edges_.push_back(e);
  return Status::OK();
}

Status GraphBuilder::AddBidirectional(NodeId a, NodeId b, RoadClass road_class,
                                      double length_m) {
  ECOCHARGE_RETURN_NOT_OK(AddEdge(a, b, road_class, length_m));
  return AddEdge(b, a, road_class, length_m);
}

Result<std::shared_ptr<RoadNetwork>> GraphBuilder::Build() {
  if (positions_.empty()) {
    return Status::InvalidArgument("cannot build an empty road network");
  }
  ECOCHARGE_RETURN_NOT_OK(
      ValidateGraphCounts(positions_.size(), edges_.size()));
  auto owned = std::make_shared<OwnedArrays>();
  owned->positions = positions_;

  const size_t n = positions_.size();
  owned->out_offsets.assign(n + 1, 0);
  for (const Edge& e : edges_) ++owned->out_offsets[e.from + 1];
  for (size_t v = 0; v < n; ++v) {
    owned->out_offsets[v + 1] += owned->out_offsets[v];
  }
  owned->out_arcs.resize(edges_.size());
  {
    std::vector<uint32_t> cursor(owned->out_offsets.begin(),
                                 owned->out_offsets.end() - 1);
    for (const Edge& e : edges_) {
      owned->out_arcs[cursor[e.from]++] = Arc{e.to, e.road_class, e.length_m};
    }
  }
  return FinishAssembly(std::move(owned));
}

namespace {

/// Pass-1 sink: validates endpoints and tallies out-degrees.
class CountingSink : public EdgeSink {
 public:
  CountingSink(size_t num_nodes, std::vector<uint32_t>* degree)
      : num_nodes_(num_nodes), degree_(degree) {}

  void Directed(NodeId from, NodeId to, RoadClass /*road_class*/,
                double /*length_m*/) override {
    if (!status_.ok()) return;
    if (from >= num_nodes_ || to >= num_nodes_) {
      status_ = Status::InvalidArgument("edge endpoint out of range");
      return;
    }
    if (from == to) {
      status_ = Status::InvalidArgument("self-loop edges are not allowed");
      return;
    }
    ++(*degree_)[from];
    ++total_;
  }

  const Status& status() const { return status_; }
  uint64_t total() const { return total_; }

 private:
  size_t num_nodes_;
  std::vector<uint32_t>* degree_;
  uint64_t total_ = 0;
  Status status_ = Status::OK();
};

/// Pass-2 sink: scatters arcs into their final forward-CSR slots.
class ScatterSink : public EdgeSink {
 public:
  ScatterSink(const OwnedArrays& owned, std::vector<uint32_t>* cursor,
              std::vector<Arc>* arcs)
      : owned_(owned), cursor_(cursor), arcs_(arcs) {}

  void Directed(NodeId from, NodeId to, RoadClass road_class,
                double length_m) override {
    if (!status_.ok()) return;
    if (from >= owned_.positions.size() || to >= owned_.positions.size() ||
        from == to || (*cursor_)[from] >= owned_.out_offsets[from + 1]) {
      status_ = Status::Internal(
          "chunked source emitted different edges across passes");
      return;
    }
    double len = length_m >= 0.0
                     ? length_m
                     : Distance(owned_.positions[from], owned_.positions[to]);
    if (len <= 0.0) len = 0.1;
    (*arcs_)[(*cursor_)[from]++] = Arc{to, road_class, len};
  }

  const Status& status() const { return status_; }

 private:
  const OwnedArrays& owned_;
  std::vector<uint32_t>* cursor_;
  std::vector<Arc>* arcs_;
  Status status_ = Status::OK();
};

}  // namespace

Result<std::shared_ptr<RoadNetwork>> BuildFromChunkedSource(
    const ChunkedEdgeSource& source) {
  const uint64_t n64 = source.NumNodes();
  if (n64 == 0) {
    return Status::InvalidArgument("cannot build an empty road network");
  }
  ECOCHARGE_RETURN_NOT_OK(ValidateGraphCounts(n64, 0));
  const size_t n = static_cast<size_t>(n64);
  const uint64_t chunks = std::max<uint64_t>(1, source.NumChunks());

  auto owned = std::make_shared<OwnedArrays>();
  owned->positions.resize(n);
  for (size_t v = 0; v < n; ++v) {
    owned->positions[v] = source.NodePosition(static_cast<NodeId>(v));
  }

  // Pass 1: count out-degrees chunk by chunk (no edge is stored).
  std::vector<uint32_t> degree(n, 0);
  CountingSink counter(n, &degree);
  for (uint64_t c = 0; c < chunks; ++c) source.EmitEdges(c, counter);
  ECOCHARGE_RETURN_NOT_OK(counter.status());
  ECOCHARGE_RETURN_NOT_OK(ValidateGraphCounts(n64, counter.total()));

  owned->out_offsets.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    owned->out_offsets[v + 1] = owned->out_offsets[v] + degree[v];
  }
  degree.clear();
  degree.shrink_to_fit();
  owned->out_arcs.resize(static_cast<size_t>(counter.total()));

  // Pass 2: replay the chunks, scattering each arc straight into its slot.
  {
    std::vector<uint32_t> cursor(owned->out_offsets.begin(),
                                 owned->out_offsets.end() - 1);
    ScatterSink scatter(*owned, &cursor, &owned->out_arcs);
    for (uint64_t c = 0; c < chunks; ++c) source.EmitEdges(c, scatter);
    ECOCHARGE_RETURN_NOT_OK(scatter.status());
    for (size_t v = 0; v < n; ++v) {
      if (cursor[v] != owned->out_offsets[v + 1]) {
        return Status::Internal(
            "chunked source emitted different edges across passes");
      }
    }
  }
  return FinishAssembly(std::move(owned));
}

}  // namespace ecocharge
