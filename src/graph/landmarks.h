#ifndef ECOCHARGE_GRAPH_LANDMARKS_H_
#define ECOCHARGE_GRAPH_LANDMARKS_H_

#include <cstdint>
#include <vector>

#include "graph/shortest_path.h"

namespace ecocharge {

/// \brief ALT (A*, Landmarks, Triangle inequality) lower bounds.
///
/// Precomputes shortest-path distances to/from a small set of landmarks
/// chosen by farthest-point selection. LowerBound(u, v) then gives an
/// admissible network-distance bound in O(#landmarks) — the CkNN-EC
/// filtering phase uses it to prune chargers whose best-case derouting cost
/// already disqualifies them, without running Dijkstra per charger.
class LandmarkIndex {
 public:
  /// Builds distances for `num_landmarks` landmarks under `cost`.
  LandmarkIndex(const RoadNetwork& network, size_t num_landmarks,
                const EdgeCostFn& cost = LengthCost);

  /// Rehydrates an index from precomputed tables — the snapshot load path.
  /// `from[i]` / `to[i]` must each hold one distance per node.
  static LandmarkIndex FromTables(std::vector<NodeId> landmarks,
                                  std::vector<std::vector<double>> from,
                                  std::vector<std::vector<double>> to);

  /// Admissible lower bound on the network distance u -> v.
  double LowerBound(NodeId u, NodeId v) const;

  size_t num_landmarks() const { return landmarks_.size(); }
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  /// Exact distance landmark i -> v (kInfiniteCost if unreachable).
  double FromLandmark(size_t i, NodeId v) const { return from_[i][v]; }

  /// Exact distance v -> landmark i.
  double ToLandmark(size_t i, NodeId v) const { return to_[i][v]; }

  // Raw tables, exposed for snapshot serialization (io.cc).
  const std::vector<std::vector<double>>& from_tables() const { return from_; }
  const std::vector<std::vector<double>>& to_tables() const { return to_; }

 private:
  LandmarkIndex() = default;

  std::vector<NodeId> landmarks_;
  std::vector<std::vector<double>> from_;  // from_[i][v]: landmark_i -> v
  std::vector<std::vector<double>> to_;    // to_[i][v]:   v -> landmark_i
};

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_LANDMARKS_H_
