#ifndef ECOCHARGE_GRAPH_ROUTE_H_
#define ECOCHARGE_GRAPH_ROUTE_H_

#include <vector>

#include "geo/polyline.h"
#include "graph/shortest_path.h"

namespace ecocharge {

/// \brief Physical properties of a concrete route through the network.
struct RouteMetrics {
  double length_m = 0.0;
  double free_flow_s = 0.0;       ///< travel time at free-flow speeds
  std::vector<EdgeId> edges;      ///< the edges traversed, in order
};

/// Resolves the edge sequence and metrics of a node path (as returned by
/// the shortest-path searches). When consecutive nodes are joined by
/// multiple parallel edges, the cheapest by length is chosen. Fails if two
/// consecutive nodes are not adjacent.
Result<RouteMetrics> ResolveRoute(const RoadNetwork& network,
                                  const std::vector<NodeId>& nodes);

/// The route's geometry as a polyline over node positions.
Polyline RouteGeometry(const RoadNetwork& network,
                       const std::vector<NodeId>& nodes);

/// Travel time of a resolved route under per-edge speed factors in (0, 1]
/// supplied by `speed_factor(arc)` (e.g. the congestion model), seconds.
double CongestedTravelSeconds(
    const RoadNetwork& network, const RouteMetrics& route,
    const std::function<double(const Arc&)>& speed_factor);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_ROUTE_H_
