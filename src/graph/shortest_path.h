#ifndef ECOCHARGE_GRAPH_SHORTEST_PATH_H_
#define ECOCHARGE_GRAPH_SHORTEST_PATH_H_

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/road_network.h"

namespace ecocharge {

/// Sentinel for "unreachable".
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// \brief Per-edge cost functor over the inlined CSR arc record (which
/// carries everything a cost can depend on: length and road class).
/// Defaults to geometric length; the traffic module supplies
/// time-dependent travel-time costs.
using EdgeCostFn = std::function<double(const Arc&)>;

/// Edge cost = length in meters.
double LengthCost(const Arc& a);

/// Edge cost = free-flow travel time in seconds.
double FreeFlowTimeCost(const Arc& a);

/// \brief A shortest path: total cost plus the node sequence.
struct PathResult {
  double cost = kInfiniteCost;
  std::vector<NodeId> nodes;  ///< empty when unreachable

  bool Reachable() const { return cost < kInfiniteCost; }
};

/// Which adjacency a sweep expands. A forward sweep from s settles
/// d(s -> v); a backward sweep over the in-adjacency from t settles
/// d(v -> t) — the return-leg direction of the derouting computation.
enum class SweepDirection : uint8_t { kForward, kBackward };

/// \brief Reusable Dijkstra workspace over one network.
///
/// Distances and parents are version-stamped so consecutive queries cost
/// O(visited) rather than O(V) to reset — the pattern the CkNN literature
/// uses for repeated searches from a moving query point.
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const RoadNetwork& network);

  /// Single-source single-target; stops as soon as `target` is settled.
  PathResult ShortestPath(NodeId source, NodeId target,
                          const EdgeCostFn& cost = LengthCost);

  /// A* with a Euclidean-distance admissible heuristic (only valid for
  /// length costs, or time costs divided by max speed — the caller passes
  /// `heuristic_scale` = 1/max_speed for time costs, 1.0 for length).
  PathResult AStar(NodeId source, NodeId target,
                   const EdgeCostFn& cost = LengthCost,
                   double heuristic_scale = 1.0);

  /// Single-source costs to every node within `max_cost` (unreached nodes
  /// report kInfiniteCost). Returns the settled node count.
  size_t OneToMany(NodeId source, double max_cost, const EdgeCostFn& cost,
                   std::vector<NodeId>* settled = nullptr);

  /// Multi-target one-to-many: settles outward from `source` and stops as
  /// soon as every reachable node in `targets` is final (instead of
  /// settling a whole cost ball). Invalid target ids are ignored and
  /// duplicates are settled once. Returns the number of settled target
  /// entries (a duplicated id counts per occurrence); costs are read back
  /// with CostTo(). Equivalent to StartSweep({source}, kForward) followed
  /// by ExtendSweep(targets, cost).
  size_t OneToMany(NodeId source, std::span<const NodeId> targets,
                   const EdgeCostFn& cost);

  /// Begins a resumable multi-source sweep: every valid node in `sources`
  /// is seeded at cost 0 and the frontier is kept alive across
  /// ExtendSweep() calls, so later calls resume where earlier ones stopped
  /// instead of re-settling the inner ball. Starting a sweep invalidates
  /// the previous epoch's costs.
  void StartSweep(std::span<const NodeId> sources,
                  SweepDirection direction = SweepDirection::kForward);

  /// Extends the current sweep until every reachable node in `targets` is
  /// settled (or the frontier is exhausted). The same `cost` function must
  /// be passed to every extension of one sweep — the frontier carries
  /// priorities computed with it. Returns the number of targets with final
  /// costs (including ones settled by earlier extensions).
  size_t ExtendSweep(std::span<const NodeId> targets, const EdgeCostFn& cost);

  /// True when `v` has a final cost in the current sweep. CostTo() on an
  /// unsettled-but-reached node returns its tentative distance, which a
  /// resumable sweep may still improve — batch readers check this first.
  bool Settled(NodeId v) const {
    return v < settled_version_.size() && settled_version_[v] == epoch_;
  }

  /// Cost to `v` after the last OneToMany/ShortestPath call that settled it
  /// in the current epoch; kInfiniteCost otherwise.
  double CostTo(NodeId v) const {
    return labels_[v].version == epoch_ ? labels_[v].dist : kInfiniteCost;
  }

  /// Number of heap pops in the last query (exposed for benchmarks).
  size_t last_settled_count() const { return last_settled_; }

 private:
  /// Frontier entry of the persistent sweep heap (kept as a member so a
  /// warm search performs zero heap allocations per query).
  struct SweepEntry {
    double priority;
    NodeId node;
  };
  static bool SweepLater(const SweepEntry& a, const SweepEntry& b) {
    return a.priority > b.priority;
  }

  void NewEpoch();
  std::vector<NodeId> ReconstructPath(NodeId source, NodeId target) const;

  /// Per-node search state — tentative distance, parent, and the epoch
  /// stamp that says whether either is current — packed into one 16-byte
  /// record so a relax touches a single cache line instead of three
  /// parallel arrays. The companion of the inlined Arc stream: at
  /// continental scale the label array is the other random-access stream
  /// of the relax loop.
  struct NodeLabel {
    double dist;
    NodeId parent;
    uint32_t version;
  };
  static_assert(sizeof(NodeLabel) == 16, "NodeLabel should stay one line");

  const RoadNetwork& network_;
  std::vector<NodeLabel> labels_;
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  // Resumable-sweep state. settled_version_ distinguishes "final" from
  // "reached with a tentative distance" across ExtendSweep calls;
  // target_version_ marks requested targets so pending-target counting
  // ignores duplicates. Both are epoch-stamped like version_.
  std::vector<SweepEntry> frontier_;
  std::vector<uint32_t> settled_version_;
  std::vector<uint32_t> target_version_;
  SweepDirection direction_ = SweepDirection::kForward;
};

/// \brief Bellman-Ford reference implementation (O(VE)); used by tests as
/// ground truth for Dijkstra/A*.
PathResult BellmanFordShortestPath(const RoadNetwork& network, NodeId source,
                                   NodeId target,
                                   const EdgeCostFn& cost = LengthCost);

/// \brief Bidirectional Dijkstra: alternating forward and backward
/// expansions meeting in the middle; settles roughly half the nodes of the
/// unidirectional search on long queries. Cost function must be symmetric
/// in time (it is evaluated once per edge, like the other searches).
PathResult BidirectionalShortestPath(const RoadNetwork& network,
                                     NodeId source, NodeId target,
                                     const EdgeCostFn& cost = LengthCost);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_SHORTEST_PATH_H_
