#ifndef ECOCHARGE_GRAPH_SHORTEST_PATH_H_
#define ECOCHARGE_GRAPH_SHORTEST_PATH_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/road_network.h"

namespace ecocharge {

/// Sentinel for "unreachable".
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// \brief Per-edge cost functor. Defaults to geometric length; the traffic
/// module supplies time-dependent travel-time costs.
using EdgeCostFn = std::function<double(const Edge&)>;

/// Edge cost = length in meters.
double LengthCost(const Edge& e);

/// Edge cost = free-flow travel time in seconds.
double FreeFlowTimeCost(const Edge& e);

/// \brief A shortest path: total cost plus the node sequence.
struct PathResult {
  double cost = kInfiniteCost;
  std::vector<NodeId> nodes;  ///< empty when unreachable

  bool Reachable() const { return cost < kInfiniteCost; }
};

/// \brief Reusable Dijkstra workspace over one network.
///
/// Distances and parents are version-stamped so consecutive queries cost
/// O(visited) rather than O(V) to reset — the pattern the CkNN literature
/// uses for repeated searches from a moving query point.
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const RoadNetwork& network);

  /// Single-source single-target; stops as soon as `target` is settled.
  PathResult ShortestPath(NodeId source, NodeId target,
                          const EdgeCostFn& cost = LengthCost);

  /// A* with a Euclidean-distance admissible heuristic (only valid for
  /// length costs, or time costs divided by max speed — the caller passes
  /// `heuristic_scale` = 1/max_speed for time costs, 1.0 for length).
  PathResult AStar(NodeId source, NodeId target,
                   const EdgeCostFn& cost = LengthCost,
                   double heuristic_scale = 1.0);

  /// Single-source costs to every node within `max_cost` (unreached nodes
  /// report kInfiniteCost). Returns the settled node count.
  size_t OneToMany(NodeId source, double max_cost, const EdgeCostFn& cost,
                   std::vector<NodeId>* settled = nullptr);

  /// Cost to `v` after the last OneToMany/ShortestPath call that settled it
  /// in the current epoch; kInfiniteCost otherwise.
  double CostTo(NodeId v) const {
    return version_[v] == epoch_ ? dist_[v] : kInfiniteCost;
  }

  /// Number of heap pops in the last query (exposed for benchmarks).
  size_t last_settled_count() const { return last_settled_; }

 private:
  void NewEpoch();
  std::vector<NodeId> ReconstructPath(NodeId source, NodeId target) const;

  const RoadNetwork& network_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<uint32_t> version_;
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;
};

/// \brief Bellman-Ford reference implementation (O(VE)); used by tests as
/// ground truth for Dijkstra/A*.
PathResult BellmanFordShortestPath(const RoadNetwork& network, NodeId source,
                                   NodeId target,
                                   const EdgeCostFn& cost = LengthCost);

/// \brief Bidirectional Dijkstra: alternating forward and backward
/// expansions meeting in the middle; settles roughly half the nodes of the
/// unidirectional search on long queries. Cost function must be symmetric
/// in time (it is evaluated once per edge, like the other searches).
PathResult BidirectionalShortestPath(const RoadNetwork& network,
                                     NodeId source, NodeId target,
                                     const EdgeCostFn& cost = LengthCost);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_SHORTEST_PATH_H_
