#include "graph/landmarks.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ecocharge {

namespace {

/// One-to-all Dijkstra; `forward` walks out-edges, otherwise in-edges (which
/// computes distances *to* the source in the original graph).
std::vector<double> OneToAll(const RoadNetwork& network, NodeId source,
                             const EdgeCostFn& cost, bool forward) {
  std::vector<double> dist(network.NumNodes(), kInfiniteCost);
  struct Entry {
    double d;
    NodeId v;
    bool operator>(const Entry& o) const { return d > o.d; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  std::vector<char> settled(network.NumNodes(), 0);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = 1;
    auto arcs = forward ? network.OutArcs(v) : network.InArcs(v);
    for (const Arc& a : arcs) {
      double nd = d + cost(a);
      if (nd < dist[a.node]) {
        dist[a.node] = nd;
        heap.push({nd, a.node});
      }
    }
  }
  return dist;
}

}  // namespace

LandmarkIndex::LandmarkIndex(const RoadNetwork& network, size_t num_landmarks,
                             const EdgeCostFn& cost) {
  num_landmarks = std::min(num_landmarks, network.NumNodes());
  if (num_landmarks == 0) return;

  // Farthest-point selection over network distance: start from node 0, then
  // repeatedly pick the node farthest from all chosen landmarks.
  std::vector<double> min_dist(network.NumNodes(), kInfiniteCost);
  NodeId next = 0;
  for (size_t i = 0; i < num_landmarks; ++i) {
    landmarks_.push_back(next);
    from_.push_back(OneToAll(network, next, cost, /*forward=*/true));
    to_.push_back(OneToAll(network, next, cost, /*forward=*/false));
    const std::vector<double>& d = from_.back();
    double best = -1.0;
    for (NodeId v = 0; v < network.NumNodes(); ++v) {
      if (d[v] < min_dist[v]) min_dist[v] = d[v];
      if (min_dist[v] < kInfiniteCost && min_dist[v] > best) {
        best = min_dist[v];
        next = v;
      }
    }
    if (best < 0.0) break;  // graph smaller than requested landmark count
  }
}

LandmarkIndex LandmarkIndex::FromTables(
    std::vector<NodeId> landmarks, std::vector<std::vector<double>> from,
    std::vector<std::vector<double>> to) {
  LandmarkIndex index;
  index.landmarks_ = std::move(landmarks);
  index.from_ = std::move(from);
  index.to_ = std::move(to);
  return index;
}

double LandmarkIndex::LowerBound(NodeId u, NodeId v) const {
  double bound = 0.0;
  for (size_t i = 0; i < landmarks_.size(); ++i) {
    // Triangle inequality both ways around landmark i:
    //   d(u,v) >= d(L,v) - d(L,u)   and   d(u,v) >= d(u,L) - d(v,L)
    double fwd = from_[i][v] - from_[i][u];
    double bwd = to_[i][u] - to_[i][v];
    if (std::isfinite(fwd)) bound = std::max(bound, fwd);
    if (std::isfinite(bwd)) bound = std::max(bound, bwd);
  }
  return bound;
}

}  // namespace ecocharge
