#include "graph/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <type_traits>

#include "graph/landmarks.h"

namespace ecocharge {

Status SaveRoadNetwork(const RoadNetwork& network, std::ostream& os) {
  os << "ecg 1\n";
  os << network.NumNodes() << " " << network.NumEdges() << "\n";
  os << std::setprecision(17);
  for (NodeId v = 0; v < network.NumNodes(); ++v) {
    const Point& p = network.NodePosition(v);
    os << p.x << " " << p.y << "\n";
  }
  for (NodeId v = 0; v < network.NumNodes(); ++v) {
    for (const Arc& a : network.OutArcs(v)) {
      os << v << " " << a.node << " " << a.length_m << " "
         << static_cast<int>(a.road_class) << "\n";
    }
  }
  if (!os) return Status::IOError("stream write failed");
  return Status::OK();
}

Status SaveRoadNetworkFile(const RoadNetwork& network,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveRoadNetwork(network, out);
}

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetwork(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "ecg" || version != 1) {
    return Status::IOError("bad header: expected 'ecg 1'");
  }
  size_t num_nodes = 0, num_edges = 0;
  if (!(is >> num_nodes >> num_edges)) {
    return Status::IOError("bad counts line");
  }
  GraphBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    double x, y;
    if (!(is >> x >> y)) {
      return Status::IOError("truncated node section at node " +
                             std::to_string(i));
    }
    builder.AddNode(Point{x, y});
  }
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId from, to;
    double length;
    int road_class;
    if (!(is >> from >> to >> length >> road_class)) {
      return Status::IOError("truncated edge section at edge " +
                             std::to_string(i));
    }
    if (road_class < 0 || road_class > 2) {
      return Status::IOError("invalid road class " +
                             std::to_string(road_class));
    }
    ECOCHARGE_RETURN_NOT_OK(builder.AddEdge(
        from, to, static_cast<RoadClass>(road_class), length));
  }
  return builder.Build();
}

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetworkFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadRoadNetwork(in);
}


// ---------------------------------------------------------------------------
// Binary snapshot format.
// ---------------------------------------------------------------------------

namespace {

constexpr char kSnapshotMagic[8] = {'E', 'C', 'G', 'S', 'N', 'A', 'P', '\0'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint64_t kSectionAlign = 64;

/// Fixed-size file header. Trivially copyable by construction; any layout
/// change here or in Arc/Point must bump kSnapshotVersion.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t num_nodes;
  uint64_t num_edges;
  double min_x, min_y, max_x, max_y;
  uint32_t locator_nx;
  uint32_t locator_ny;
  double locator_cell_m;
  uint32_t num_landmarks;
  uint32_t reserved;
};

struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;
  uint64_t byte_size;
};

static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(std::is_trivially_copyable_v<Point> && sizeof(Point) == 16,
              "snapshot format assumes 16-byte Point records");

enum SectionId : uint32_t {
  kSectionPositions = 1,
  kSectionOutOffsets = 2,
  kSectionOutArcs = 3,
  kSectionInOffsets = 4,
  kSectionInArcs = 5,
  kSectionInEdgeIds = 6,
  kSectionLocatorOffsets = 7,
  kSectionLocatorPoints = 8,
  kSectionLandmarkNodes = 9,
  kSectionLandmarkFrom = 10,  ///< concatenated from_[i] rows, L*N doubles
  kSectionLandmarkTo = 11,    ///< concatenated to_[i] rows, L*N doubles
  kSectionChRank = 12,         ///< CH node ranks, N u32
  kSectionChUpOffsets = 13,    ///< upward CSR offsets, (N+1) u32
  kSectionChUpArcs = 14,       ///< upward arcs, kChSnapshotArcBytes each
  kSectionChDownOffsets = 15,  ///< downward CSR offsets, (N+1) u32
  kSectionChDownArcs = 16,     ///< downward arcs, kChSnapshotArcBytes each
};

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

/// Read-only mapping whose lifetime backs a loaded network's views.
struct MappedFile {
  const uint8_t* data = nullptr;
  size_t size = 0;
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data != nullptr) {
      munmap(const_cast<uint8_t*>(data), size);
    }
  }
};

Result<std::shared_ptr<MappedFile>> MapFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  auto mapped = std::make_shared<MappedFile>();
  mapped->size = static_cast<size_t>(st.st_size);
  if (mapped->size > 0) {
    void* addr = ::mmap(nullptr, mapped->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("cannot mmap " + path);
    }
    mapped->data = static_cast<const uint8_t*>(addr);
  }
  ::close(fd);  // the mapping outlives the descriptor
  return mapped;
}

struct SectionPlan {
  uint32_t id;
  uint64_t offset;
  uint64_t byte_size;
};

Status WriteSection(std::ofstream& out, uint64_t* position,
                    const SectionPlan& plan, const void* bytes,
                    uint64_t byte_size) {
  static const char zeros[kSectionAlign] = {};
  if (plan.offset < *position) return Status::Internal("section overlap");
  out.write(zeros, static_cast<std::streamsize>(plan.offset - *position));
  out.write(static_cast<const char*>(bytes),
            static_cast<std::streamsize>(byte_size));
  *position = plan.offset + byte_size;
  if (!out) return Status::IOError("snapshot write failed");
  return Status::OK();
}

}  // namespace

namespace {

Status WriteSnapshotTo(const RoadNetwork& network, const std::string& path,
                       const LandmarkIndex* landmarks,
                       const ChSnapshotViews* ch) {
  const uint64_t n = network.NumNodes();
  const uint64_t m = network.NumEdges();
  const uint64_t cells =
      static_cast<uint64_t>(network.locator_nx()) * network.locator_ny();
  const uint64_t num_landmarks = landmarks ? landmarks->num_landmarks() : 0;
  if (ch != nullptr &&
      (ch->rank.size() != n || ch->up_offsets.size() != n + 1 ||
       ch->down_offsets.size() != n + 1 ||
       ch->up_arcs.size() % kChSnapshotArcBytes != 0 ||
       ch->down_arcs.size() % kChSnapshotArcBytes != 0)) {
    return Status::InvalidArgument(
        "ch views do not match the network being snapshotted");
  }

  std::vector<SectionPlan> plan;
  auto add = [&](uint32_t id, uint64_t byte_size) {
    plan.push_back({id, 0, byte_size});
  };
  add(kSectionPositions, n * sizeof(Point));
  add(kSectionOutOffsets, (n + 1) * sizeof(uint32_t));
  add(kSectionOutArcs, m * sizeof(Arc));
  add(kSectionInOffsets, (n + 1) * sizeof(uint32_t));
  add(kSectionInArcs, m * sizeof(Arc));
  add(kSectionInEdgeIds, m * sizeof(EdgeId));
  add(kSectionLocatorOffsets, (cells + 1) * sizeof(uint32_t));
  add(kSectionLocatorPoints, n * sizeof(uint32_t));
  if (num_landmarks > 0) {
    add(kSectionLandmarkNodes, num_landmarks * sizeof(NodeId));
    add(kSectionLandmarkFrom, num_landmarks * n * sizeof(double));
    add(kSectionLandmarkTo, num_landmarks * n * sizeof(double));
  }
  if (ch != nullptr) {
    add(kSectionChRank, n * sizeof(uint32_t));
    add(kSectionChUpOffsets, (n + 1) * sizeof(uint32_t));
    add(kSectionChUpArcs, ch->up_arcs.size());
    add(kSectionChDownOffsets, (n + 1) * sizeof(uint32_t));
    add(kSectionChDownArcs, ch->down_arcs.size());
  }

  uint64_t offset =
      sizeof(SnapshotHeader) + plan.size() * sizeof(SectionEntry);
  for (SectionPlan& p : plan) {
    offset = AlignUp(offset);
    p.offset = offset;
    offset += p.byte_size;
  }

  SnapshotHeader header = {};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.section_count = static_cast<uint32_t>(plan.size());
  header.num_nodes = n;
  header.num_edges = m;
  header.min_x = network.Bounds().min.x;
  header.min_y = network.Bounds().min.y;
  header.max_x = network.Bounds().max.x;
  header.max_y = network.Bounds().max.y;
  header.locator_nx = network.locator_nx();
  header.locator_ny = network.locator_ny();
  header.locator_cell_m = network.locator_cell_m();
  header.num_landmarks = static_cast<uint32_t>(num_landmarks);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const SectionPlan& p : plan) {
    SectionEntry entry = {p.id, 0, p.offset, p.byte_size};
    out.write(reinterpret_cast<const char*>(&entry), sizeof(entry));
  }
  uint64_t position =
      sizeof(SnapshotHeader) + plan.size() * sizeof(SectionEntry);

  size_t next = 0;
  auto write_next = [&](const void* bytes, uint64_t byte_size) {
    return WriteSection(out, &position, plan[next++], bytes, byte_size);
  };
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.positions().data(), n * sizeof(Point)));
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.out_offsets().data(), (n + 1) * sizeof(uint32_t)));
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.out_arcs().data(), m * sizeof(Arc)));
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.in_offsets().data(), (n + 1) * sizeof(uint32_t)));
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.in_arcs().data(), m * sizeof(Arc)));
  ECOCHARGE_RETURN_NOT_OK(
      write_next(network.in_edge_ids().data(), m * sizeof(EdgeId)));
  ECOCHARGE_RETURN_NOT_OK(write_next(network.locator_cell_offsets().data(),
                                     (cells + 1) * sizeof(uint32_t)));
  ECOCHARGE_RETURN_NOT_OK(write_next(network.locator_cell_points().data(),
                                     n * sizeof(uint32_t)));
  if (num_landmarks > 0) {
    ECOCHARGE_RETURN_NOT_OK(write_next(landmarks->landmarks().data(),
                                       num_landmarks * sizeof(NodeId)));
    // The from/to sections are row-concatenated; write row by row.
    for (int table = 0; table < 2; ++table) {
      const auto& rows =
          table == 0 ? landmarks->from_tables() : landmarks->to_tables();
      const SectionPlan& p = plan[next++];
      uint64_t row_offset = p.offset;
      for (const std::vector<double>& row : rows) {
        SectionPlan row_plan = {p.id, row_offset, row.size() * sizeof(double)};
        ECOCHARGE_RETURN_NOT_OK(WriteSection(out, &position, row_plan,
                                             row.data(),
                                             row.size() * sizeof(double)));
        row_offset += row.size() * sizeof(double);
      }
    }
  }
  if (ch != nullptr) {
    ECOCHARGE_RETURN_NOT_OK(
        write_next(ch->rank.data(), n * sizeof(uint32_t)));
    ECOCHARGE_RETURN_NOT_OK(
        write_next(ch->up_offsets.data(), (n + 1) * sizeof(uint32_t)));
    ECOCHARGE_RETURN_NOT_OK(write_next(ch->up_arcs.data(), ch->up_arcs.size()));
    ECOCHARGE_RETURN_NOT_OK(
        write_next(ch->down_offsets.data(), (n + 1) * sizeof(uint32_t)));
    ECOCHARGE_RETURN_NOT_OK(
        write_next(ch->down_arcs.data(), ch->down_arcs.size()));
  }
  out.flush();
  if (!out) return Status::IOError("snapshot write failed");
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const RoadNetwork& network, const std::string& path,
                    const LandmarkIndex* landmarks,
                    const ChSnapshotViews* ch) {
  // Write to a sibling temp file and rename into place: the target may be
  // the very file backing the network's mmap views (`graph ch --in X
  // --out X` re-snapshots a loaded network), and truncating it in place
  // would corrupt the bytes still being read out of the mapping. The
  // rename keeps the old inode alive for any open mapping and also makes
  // the save crash-atomic.
  const std::string tmp = path + ".tmp";
  Status st = WriteSnapshotTo(network, tmp, landmarks, ch);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

namespace {

struct ParsedSnapshot {
  SnapshotHeader header;
  std::vector<SectionEntry> sections;

  const SectionEntry* Find(uint32_t id) const {
    for (const SectionEntry& s : sections) {
      if (s.id == id) return &s;
    }
    return nullptr;
  }
};

/// Validates the header and section table against the file size. Every
/// failure mode (bad magic, unknown version, truncation anywhere) comes
/// back as a clean Status.
Result<ParsedSnapshot> ParseSnapshot(const uint8_t* data, uint64_t size,
                                     const std::string& path) {
  ParsedSnapshot parsed;
  if (size < sizeof(SnapshotHeader)) {
    return Status::IOError("truncated snapshot (no header): " + path);
  }
  std::memcpy(&parsed.header, data, sizeof(SnapshotHeader));
  if (std::memcmp(parsed.header.magic, kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    return Status::IOError("bad snapshot magic: " + path);
  }
  if (parsed.header.version != kSnapshotVersion) {
    return Status::IOError("unsupported snapshot version " +
                           std::to_string(parsed.header.version) +
                           " (expected " + std::to_string(kSnapshotVersion) +
                           "): " + path);
  }
  const uint64_t count = parsed.header.section_count;
  const uint64_t table_end =
      sizeof(SnapshotHeader) + count * sizeof(SectionEntry);
  if (count > 4096 || table_end > size) {
    return Status::IOError("truncated snapshot section table: " + path);
  }
  parsed.sections.resize(count);
  std::memcpy(parsed.sections.data(), data + sizeof(SnapshotHeader),
              count * sizeof(SectionEntry));
  for (const SectionEntry& s : parsed.sections) {
    if (s.offset % alignof(double) != 0 || s.byte_size > size ||
        s.offset > size - s.byte_size) {
      return Status::IOError("snapshot section " + std::to_string(s.id) +
                             " out of bounds (truncated file?): " + path);
    }
  }
  return parsed;
}

/// Returns the section's payload as a typed span, checking the exact
/// expected element count.
template <typename T>
Result<std::span<const T>> SectionSpan(const ParsedSnapshot& parsed,
                                       const uint8_t* data, uint32_t id,
                                       uint64_t expected_count,
                                       const std::string& path) {
  const SectionEntry* s = parsed.Find(id);
  if (s == nullptr) {
    return Status::IOError("snapshot missing section " + std::to_string(id) +
                           ": " + path);
  }
  if (s->byte_size != expected_count * sizeof(T)) {
    return Status::IOError("snapshot section " + std::to_string(id) +
                           " has unexpected size: " + path);
  }
  return std::span<const T>(reinterpret_cast<const T*>(data + s->offset),
                            expected_count);
}

/// The section's payload as raw bytes, validated to hold a whole number of
/// `record_bytes`-sized records.
Result<std::span<const std::byte>> SectionBytes(const ParsedSnapshot& parsed,
                                                const uint8_t* data,
                                                uint32_t id,
                                                uint64_t record_bytes,
                                                const std::string& path) {
  const SectionEntry* s = parsed.Find(id);
  if (s == nullptr) {
    return Status::IOError("snapshot missing section " + std::to_string(id) +
                           ": " + path);
  }
  if (s->byte_size % record_bytes != 0) {
    return Status::IOError("snapshot section " + std::to_string(id) +
                           " is not a whole number of records: " + path);
  }
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data + s->offset), s->byte_size);
}

Result<LoadedSnapshot> LoadSnapshotImpl(const std::string& path,
                                        bool want_landmarks,
                                        bool want_ch = false) {
  ECOCHARGE_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapped,
                             MapFile(path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      ParsedSnapshot parsed,
      ParseSnapshot(mapped->data, mapped->size, path));
  const SnapshotHeader& h = parsed.header;
  ECOCHARGE_RETURN_NOT_OK(ValidateGraphCounts(h.num_nodes, h.num_edges));
  const uint64_t n = h.num_nodes;
  const uint64_t m = h.num_edges;
  const uint64_t cells = static_cast<uint64_t>(h.locator_nx) * h.locator_ny;

  RoadNetwork::Views views;
  const uint8_t* data = mapped->data;
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.positions,
      SectionSpan<Point>(parsed, data, kSectionPositions, n, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.out_offsets,
      SectionSpan<uint32_t>(parsed, data, kSectionOutOffsets, n + 1, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.out_arcs, SectionSpan<Arc>(parsed, data, kSectionOutArcs, m, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.in_offsets,
      SectionSpan<uint32_t>(parsed, data, kSectionInOffsets, n + 1, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.in_arcs, SectionSpan<Arc>(parsed, data, kSectionInArcs, m, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.in_edge_ids,
      SectionSpan<EdgeId>(parsed, data, kSectionInEdgeIds, m, path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.locator_cell_offsets,
      SectionSpan<uint32_t>(parsed, data, kSectionLocatorOffsets, cells + 1,
                            path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      views.locator_cell_points,
      SectionSpan<uint32_t>(parsed, data, kSectionLocatorPoints, n, path));
  views.bounds = BoundingBox{Point{h.min_x, h.min_y}, Point{h.max_x, h.max_y}};
  views.locator_nx = h.locator_nx;
  views.locator_ny = h.locator_ny;
  views.locator_cell_m = h.locator_cell_m;
  views.backing = mapped;

  LoadedSnapshot loaded;
  ECOCHARGE_ASSIGN_OR_RETURN(loaded.network,
                             RoadNetwork::FromViews(std::move(views)));

  if (want_landmarks && h.num_landmarks > 0) {
    const uint64_t L = h.num_landmarks;
    ECOCHARGE_ASSIGN_OR_RETURN(
        std::span<const NodeId> ids,
        SectionSpan<NodeId>(parsed, data, kSectionLandmarkNodes, L, path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        std::span<const double> from_flat,
        SectionSpan<double>(parsed, data, kSectionLandmarkFrom, L * n, path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        std::span<const double> to_flat,
        SectionSpan<double>(parsed, data, kSectionLandmarkTo, L * n, path));
    std::vector<std::vector<double>> from(L), to(L);
    for (uint64_t i = 0; i < L; ++i) {
      from[i].assign(from_flat.begin() + i * n,
                     from_flat.begin() + (i + 1) * n);
      to[i].assign(to_flat.begin() + i * n, to_flat.begin() + (i + 1) * n);
    }
    loaded.landmarks =
        std::make_unique<LandmarkIndex>(LandmarkIndex::FromTables(
            std::vector<NodeId>(ids.begin(), ids.end()), std::move(from),
            std::move(to)));
  }

  if (want_ch && parsed.Find(kSectionChRank) != nullptr) {
    // A CH section set is all-or-nothing: rank present means the other four
    // must parse too, so a truncated save cannot masquerade as "no CH".
    ChSnapshotViews ch;
    ECOCHARGE_ASSIGN_OR_RETURN(
        ch.rank, SectionSpan<uint32_t>(parsed, data, kSectionChRank, n, path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        ch.up_offsets,
        SectionSpan<uint32_t>(parsed, data, kSectionChUpOffsets, n + 1, path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        ch.up_arcs, SectionBytes(parsed, data, kSectionChUpArcs,
                                 kChSnapshotArcBytes, path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        ch.down_offsets, SectionSpan<uint32_t>(parsed, data,
                                               kSectionChDownOffsets, n + 1,
                                               path));
    ECOCHARGE_ASSIGN_OR_RETURN(
        ch.down_arcs, SectionBytes(parsed, data, kSectionChDownArcs,
                                   kChSnapshotArcBytes, path));
    ch.backing = mapped;
    loaded.ch = std::move(ch);
  }
  return loaded;
}

}  // namespace

Result<std::shared_ptr<RoadNetwork>> LoadSnapshot(const std::string& path) {
  ECOCHARGE_ASSIGN_OR_RETURN(LoadedSnapshot loaded,
                             LoadSnapshotImpl(path, /*want_landmarks=*/false));
  return loaded.network;
}

Result<LoadedSnapshot> LoadSnapshotWithLandmarks(const std::string& path) {
  return LoadSnapshotImpl(path, /*want_landmarks=*/true);
}

Result<LoadedSnapshot> LoadSnapshotWithAux(const std::string& path) {
  return LoadSnapshotImpl(path, /*want_landmarks=*/true, /*want_ch=*/true);
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  ECOCHARGE_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapped,
                             MapFile(path));
  ECOCHARGE_ASSIGN_OR_RETURN(
      ParsedSnapshot parsed,
      ParseSnapshot(mapped->data, mapped->size, path));
  SnapshotInfo info;
  info.version = parsed.header.version;
  info.num_nodes = parsed.header.num_nodes;
  info.num_edges = parsed.header.num_edges;
  info.num_landmarks = parsed.header.num_landmarks;
  info.file_bytes = mapped->size;
  info.bounds = BoundingBox{Point{parsed.header.min_x, parsed.header.min_y},
                            Point{parsed.header.max_x, parsed.header.max_y}};
  for (const SectionEntry& s : parsed.sections) {
    info.sections.emplace_back(s.id, s.byte_size);
    if (s.id == kSectionChRank) info.has_ch = true;
    if (s.id == kSectionChUpArcs) {
      info.ch_up_arcs = s.byte_size / kChSnapshotArcBytes;
    }
    if (s.id == kSectionChDownArcs) {
      info.ch_down_arcs = s.byte_size / kChSnapshotArcBytes;
    }
  }
  return info;
}

const char* SnapshotSectionName(uint32_t id) {
  switch (id) {
    case kSectionPositions:
      return "positions";
    case kSectionOutOffsets:
      return "out_offsets";
    case kSectionOutArcs:
      return "out_arcs";
    case kSectionInOffsets:
      return "in_offsets";
    case kSectionInArcs:
      return "in_arcs";
    case kSectionInEdgeIds:
      return "in_edge_ids";
    case kSectionLocatorOffsets:
      return "locator_offsets";
    case kSectionLocatorPoints:
      return "locator_points";
    case kSectionLandmarkNodes:
      return "landmark_nodes";
    case kSectionLandmarkFrom:
      return "landmark_from";
    case kSectionLandmarkTo:
      return "landmark_to";
    case kSectionChRank:
      return "ch_rank";
    case kSectionChUpOffsets:
      return "ch_up_offsets";
    case kSectionChUpArcs:
      return "ch_up_arcs";
    case kSectionChDownOffsets:
      return "ch_down_offsets";
    case kSectionChDownArcs:
      return "ch_down_arcs";
    default:
      return "unknown";
  }
}

}  // namespace ecocharge
