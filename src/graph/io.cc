#include "graph/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

namespace ecocharge {

Status SaveRoadNetwork(const RoadNetwork& network, std::ostream& os) {
  os << "ecg 1\n";
  os << network.NumNodes() << " " << network.NumEdges() << "\n";
  os << std::setprecision(17);
  for (NodeId v = 0; v < network.NumNodes(); ++v) {
    const Point& p = network.NodePosition(v);
    os << p.x << " " << p.y << "\n";
  }
  for (EdgeId e = 0; e < network.NumEdges(); ++e) {
    const Edge& edge = network.edge(e);
    os << edge.from << " " << edge.to << " " << edge.length_m << " "
       << static_cast<int>(edge.road_class) << "\n";
  }
  if (!os) return Status::IOError("stream write failed");
  return Status::OK();
}

Status SaveRoadNetworkFile(const RoadNetwork& network,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveRoadNetwork(network, out);
}

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetwork(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "ecg" || version != 1) {
    return Status::IOError("bad header: expected 'ecg 1'");
  }
  size_t num_nodes = 0, num_edges = 0;
  if (!(is >> num_nodes >> num_edges)) {
    return Status::IOError("bad counts line");
  }
  GraphBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    double x, y;
    if (!(is >> x >> y)) {
      return Status::IOError("truncated node section at node " +
                             std::to_string(i));
    }
    builder.AddNode(Point{x, y});
  }
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId from, to;
    double length;
    int road_class;
    if (!(is >> from >> to >> length >> road_class)) {
      return Status::IOError("truncated edge section at edge " +
                             std::to_string(i));
    }
    if (road_class < 0 || road_class > 2) {
      return Status::IOError("invalid road class " +
                             std::to_string(road_class));
    }
    ECOCHARGE_RETURN_NOT_OK(builder.AddEdge(
        from, to, static_cast<RoadClass>(road_class), length));
  }
  return builder.Build();
}

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetworkFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadRoadNetwork(in);
}

}  // namespace ecocharge
