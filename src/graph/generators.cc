#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "spatial/kdtree.h"

namespace ecocharge {

namespace {

/// Union-find used to patch disconnected components.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct PendingEdge {
  NodeId a;
  NodeId b;
  RoadClass road_class;
};

/// Adds edges joining components until one component remains: repeatedly
/// connects each minor component's node to its nearest node in a different
/// component (via kd-tree over all nodes).
void PatchConnectivity(const std::vector<Point>& positions,
                       std::vector<PendingEdge>& edges) {
  DisjointSet ds(positions.size());
  for (const PendingEdge& e : edges) ds.Union(e.a, e.b);

  KdTree tree;
  tree.Build(positions);
  bool merged = true;
  while (merged) {
    merged = false;
    // Group nodes by component root.
    std::vector<size_t> root(positions.size());
    size_t first_root = ds.Find(0);
    bool multiple = false;
    for (size_t i = 0; i < positions.size(); ++i) {
      root[i] = ds.Find(i);
      if (root[i] != first_root) multiple = true;
    }
    if (!multiple) break;
    // For the first node found in a non-primary component, link it to its
    // nearest foreign neighbor.
    for (size_t i = 0; i < positions.size(); ++i) {
      if (root[i] == first_root) continue;
      std::vector<Neighbor> nn =
          tree.Knn(positions[i], std::min<size_t>(positions.size(), 16));
      for (const Neighbor& cand : nn) {
        if (ds.Find(cand.id) != root[i]) {
          edges.push_back({static_cast<NodeId>(i), cand.id,
                           RoadClass::kArterial});
          ds.Union(i, cand.id);
          merged = true;
          break;
        }
      }
      if (merged) break;
    }
    if (!merged) {
      // Fallback: directly join to node 0 (possible when the 16-NN
      // neighborhood is entirely same-component).
      for (size_t i = 0; i < positions.size(); ++i) {
        if (ds.Find(i) != first_root) {
          edges.push_back({static_cast<NodeId>(i), 0, RoadClass::kArterial});
          ds.Union(i, 0);
          merged = true;
          break;
        }
      }
    }
  }
}

Result<std::shared_ptr<RoadNetwork>> BuildFrom(
    const std::vector<Point>& positions, std::vector<PendingEdge> edges) {
  PatchConnectivity(positions, edges);
  GraphBuilder builder;
  for (const Point& p : positions) builder.AddNode(p);
  for (const PendingEdge& e : edges) {
    ECOCHARGE_RETURN_NOT_OK(builder.AddBidirectional(e.a, e.b, e.road_class));
  }
  return builder.Build();
}

}  // namespace

Result<std::shared_ptr<RoadNetwork>> MakeGridNetwork(
    const GridNetworkOptions& options) {
  if (options.nx < 2 || options.ny < 2) {
    return Status::InvalidArgument("grid needs at least 2x2 nodes");
  }
  if (options.spacing_m <= 0.0) {
    return Status::InvalidArgument("spacing must be positive");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.reserve(static_cast<size_t>(options.nx) * options.ny);
  double jitter = options.spacing_m * options.jitter_fraction;
  for (int y = 0; y < options.ny; ++y) {
    for (int x = 0; x < options.nx; ++x) {
      positions.push_back(Point{x * options.spacing_m +
                                    rng.NextDouble(-jitter, jitter),
                                y * options.spacing_m +
                                    rng.NextDouble(-jitter, jitter)});
    }
  }
  auto node_at = [&](int x, int y) {
    return static_cast<NodeId>(y * options.nx + x);
  };
  auto line_class = [&](int index, int center) {
    if (index == center) return RoadClass::kHighway;
    if (options.arterial_every > 0 && index % options.arterial_every == 0) {
      return RoadClass::kArterial;
    }
    return RoadClass::kLocal;
  };
  std::vector<PendingEdge> edges;
  for (int y = 0; y < options.ny; ++y) {
    RoadClass row_class = line_class(y, options.ny / 2);
    for (int x = 0; x + 1 < options.nx; ++x) {
      edges.push_back({node_at(x, y), node_at(x + 1, y), row_class});
    }
  }
  for (int x = 0; x < options.nx; ++x) {
    RoadClass col_class = line_class(x, options.nx / 2);
    for (int y = 0; y + 1 < options.ny; ++y) {
      edges.push_back({node_at(x, y), node_at(x, y + 1), col_class});
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeRadialCity(
    const RadialCityOptions& options) {
  if (options.rings < 1 || options.spokes < 3) {
    return Status::InvalidArgument("need >=1 ring and >=3 spokes");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.push_back(Point{0.0, 0.0});  // center
  auto ring_node = [&](int ring, int spoke) {
    // Rings are 1-based; node ids: 1 + (ring-1)*spokes + spoke.
    return static_cast<NodeId>(1 + (ring - 1) * options.spokes + spoke);
  };
  double jitter = options.ring_spacing_m * options.jitter_fraction;
  for (int ring = 1; ring <= options.rings; ++ring) {
    double radius = ring * options.ring_spacing_m;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      double angle = 2.0 * M_PI * spoke / options.spokes;
      positions.push_back(
          Point{radius * std::cos(angle) + rng.NextDouble(-jitter, jitter),
                radius * std::sin(angle) + rng.NextDouble(-jitter, jitter)});
    }
  }
  std::vector<PendingEdge> edges;
  // Radial spokes: center -> ring1, ring_i -> ring_{i+1}. Inner radials are
  // arterials, the outermost ring connector stays arterial, spokes 0 and
  // spokes/2 form a highway axis.
  for (int spoke = 0; spoke < options.spokes; ++spoke) {
    RoadClass rc = (spoke == 0 || spoke == options.spokes / 2)
                       ? RoadClass::kHighway
                       : RoadClass::kArterial;
    edges.push_back({0, ring_node(1, spoke), rc});
    for (int ring = 1; ring < options.rings; ++ring) {
      edges.push_back({ring_node(ring, spoke), ring_node(ring + 1, spoke), rc});
    }
  }
  // Ring roads: local except the middle ring (arterial ring road).
  for (int ring = 1; ring <= options.rings; ++ring) {
    RoadClass rc = ring == (options.rings + 1) / 2 ? RoadClass::kArterial
                                                   : RoadClass::kLocal;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      edges.push_back({ring_node(ring, spoke),
                       ring_node(ring, (spoke + 1) % options.spokes), rc});
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeRandomGeometric(
    const RandomGeometricOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  if (options.k_nearest < 1) {
    return Status::InvalidArgument("k_nearest must be >= 1");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.reserve(options.num_nodes);
  for (size_t i = 0; i < options.num_nodes; ++i) {
    positions.push_back(Point{rng.NextDouble(0.0, options.width_m),
                              rng.NextDouble(0.0, options.height_m)});
  }
  KdTree tree;
  tree.Build(positions);
  std::vector<PendingEdge> edges;
  for (size_t i = 0; i < positions.size(); ++i) {
    std::vector<Neighbor> nn = tree.Knn(
        positions[i], static_cast<size_t>(options.k_nearest) + 1);
    int linked = 0;
    for (const Neighbor& cand : nn) {
      if (cand.id == i) continue;
      RoadClass rc = linked == 0 ? RoadClass::kArterial : RoadClass::kLocal;
      if (cand.id > i) {  // avoid duplicate undirected pairs
        edges.push_back({static_cast<NodeId>(i), cand.id, rc});
      }
      if (++linked >= options.k_nearest) break;
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeCorridorRegion(
    const CorridorRegionOptions& options) {
  if (options.num_cities < 1) {
    return Status::InvalidArgument("need at least one city");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  std::vector<PendingEdge> edges;
  std::vector<NodeId> city_centers;

  for (int city = 0; city < options.num_cities; ++city) {
    double cx = rng.NextDouble(0.1, 0.9) * options.region_width_m;
    double cy = rng.NextDouble(0.1, 0.9) * options.region_height_m;
    NodeId base = static_cast<NodeId>(positions.size());
    double jitter = options.city_spacing_m * 0.15;
    for (int y = 0; y < options.city_ny; ++y) {
      for (int x = 0; x < options.city_nx; ++x) {
        positions.push_back(Point{
            cx + (x - options.city_nx / 2) * options.city_spacing_m +
                rng.NextDouble(-jitter, jitter),
            cy + (y - options.city_ny / 2) * options.city_spacing_m +
                rng.NextDouble(-jitter, jitter)});
      }
    }
    auto node_at = [&](int x, int y) {
      return static_cast<NodeId>(base + y * options.city_nx + x);
    };
    for (int y = 0; y < options.city_ny; ++y) {
      RoadClass rc = y == options.city_ny / 2 ? RoadClass::kArterial
                                              : RoadClass::kLocal;
      for (int x = 0; x + 1 < options.city_nx; ++x) {
        edges.push_back({node_at(x, y), node_at(x + 1, y), rc});
      }
    }
    for (int x = 0; x < options.city_nx; ++x) {
      RoadClass rc = x == options.city_nx / 2 ? RoadClass::kArterial
                                              : RoadClass::kLocal;
      for (int y = 0; y + 1 < options.city_ny; ++y) {
        edges.push_back({node_at(x, y), node_at(x, y + 1), rc});
      }
    }
    city_centers.push_back(
        node_at(options.city_nx / 2, options.city_ny / 2));
  }

  // Highway corridors: chain cities in x-order, with waypoint nodes every
  // ~10 km so trajectories can follow the corridor smoothly.
  std::vector<size_t> order(city_centers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return positions[city_centers[a]].x < positions[city_centers[b]].x;
  });
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    NodeId from = city_centers[order[i]];
    NodeId to = city_centers[order[i + 1]];
    Point a = positions[from];
    Point b = positions[to];
    double dist = Distance(a, b);
    int hops = std::max(1, static_cast<int>(dist / 10000.0));
    NodeId prev = from;
    for (int h = 1; h < hops; ++h) {
      double t = static_cast<double>(h) / hops;
      Point mid = a + (b - a) * t;
      mid.y += rng.NextGaussian(0.0, dist * 0.01);
      NodeId wp = static_cast<NodeId>(positions.size());
      positions.push_back(mid);
      edges.push_back({prev, wp, RoadClass::kHighway});
      prev = wp;
    }
    edges.push_back({prev, to, RoadClass::kHighway});
  }
  return BuildFrom(positions, std::move(edges));
}

// ---------------------------------------------------------------------------
// Streaming generators.
// ---------------------------------------------------------------------------

namespace {

/// SplitMix64-style mix over (seed, a, b). Per-node randomness must be a
/// pure function of the node id so positions and edges are identical for
/// any chunk partition; a sequential Rng would tie the output to emission
/// order.
uint64_t Hash64(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t x = seed + (a + 1) * 0x9E3779B97F4A7C15ull +
               (b + 1) * 0xD1B54A32D192ED03ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Uniform in [0, 1).
double HashUnit(uint64_t seed, uint64_t a, uint64_t b) {
  return static_cast<double>(Hash64(seed, a, b) >> 11) * 0x1.0p-53;
}

class StreamingGridSource : public ChunkedEdgeSource {
 public:
  explicit StreamingGridSource(const StreamingGridOptions& o) : o_(o) {
    chunks_ = std::clamp<uint64_t>(o.num_chunks, 1, o.ny);
  }

  uint64_t NumNodes() const override { return o_.nx * o_.ny; }
  uint64_t NumChunks() const override { return chunks_; }

  Point NodePosition(NodeId v) const override {
    uint64_t x = v % o_.nx;
    uint64_t y = v / o_.nx;
    double jitter = o_.spacing_m * o_.jitter_fraction;
    return Point{
        x * o_.spacing_m + (2.0 * HashUnit(o_.seed, v, 0) - 1.0) * jitter,
        y * o_.spacing_m + (2.0 * HashUnit(o_.seed, v, 1) - 1.0) * jitter};
  }

  void EmitEdges(uint64_t chunk, EdgeSink& sink) const override {
    // Chunk = a range of rows; each row owns its horizontal edges and the
    // vertical edges up to the next row, so every edge has one owner.
    uint64_t y0 = chunk * o_.ny / chunks_;
    uint64_t y1 = (chunk + 1) * o_.ny / chunks_;
    for (uint64_t y = y0; y < y1; ++y) {
      RoadClass row_class = LineClass(y, o_.ny / 2);
      for (uint64_t x = 0; x + 1 < o_.nx; ++x) {
        sink.Bidirectional(NodeAt(x, y), NodeAt(x + 1, y), row_class);
      }
      if (y + 1 < o_.ny) {
        for (uint64_t x = 0; x < o_.nx; ++x) {
          sink.Bidirectional(NodeAt(x, y), NodeAt(x, y + 1),
                             LineClass(x, o_.nx / 2));
        }
      }
    }
  }

 private:
  NodeId NodeAt(uint64_t x, uint64_t y) const {
    return static_cast<NodeId>(y * o_.nx + x);
  }
  RoadClass LineClass(uint64_t index, uint64_t center) const {
    if (index == center) return RoadClass::kHighway;
    if (o_.arterial_every > 0 &&
        index % static_cast<uint64_t>(o_.arterial_every) == 0) {
      return RoadClass::kArterial;
    }
    return RoadClass::kLocal;
  }

  StreamingGridOptions o_;
  uint64_t chunks_;
};

/// Nodes are assigned to grid cells in contiguous id blocks (cell c holds
/// ids [c*n/C, (c+1)*n/C)), which makes both the id -> cell map and the
/// cell -> id-range map O(1) arithmetic — no per-node bucket arrays. Each
/// cell's first node is its *anchor*; anchors form a west/south lattice and
/// every other node links to its anchor, so the graph is strongly connected
/// by construction. Proximity edges join nodes within `radius`, scanning
/// only the four forward neighbor cells (E, N, NE, SE) so each unordered
/// pair is considered exactly once; cell sides are >= radius, so no pair
/// beyond adjacent cells can be within range.
class StreamingGeometricSource : public ChunkedEdgeSource {
 public:
  StreamingGeometricSource(const StreamingGeometricOptions& o, double radius,
                           uint64_t gx, uint64_t gy)
      : o_(o),
        radius_(radius),
        gx_(gx),
        gy_(gy),
        cells_(gx * gy),
        cell_w_(o.width_m / static_cast<double>(gx)),
        cell_h_(o.height_m / static_cast<double>(gy)) {
    chunks_ = std::clamp<uint64_t>(o.num_chunks, 1, cells_);
  }

  uint64_t NumNodes() const override { return o_.num_nodes; }
  uint64_t NumChunks() const override { return chunks_; }

  Point NodePosition(NodeId v) const override {
    uint64_t c = CellOf(v);
    uint64_t cx = c % gx_;
    uint64_t cy = c / gx_;
    return Point{(cx + HashUnit(o_.seed, v, 0)) * cell_w_,
                 (cy + HashUnit(o_.seed, v, 1)) * cell_h_};
  }

  void EmitEdges(uint64_t chunk, EdgeSink& sink) const override {
    uint64_t c0 = chunk * cells_ / chunks_;
    uint64_t c1 = (chunk + 1) * cells_ / chunks_;
    for (uint64_t c = c0; c < c1; ++c) EmitCell(c, sink);
  }

 private:
  uint64_t CellOf(uint64_t v) const {
    return ((v + 1) * cells_ - 1) / o_.num_nodes;
  }
  uint64_t CellStart(uint64_t c) const { return c * o_.num_nodes / cells_; }
  NodeId AnchorOf(uint64_t c) const {
    return static_cast<NodeId>(CellStart(c));
  }

  void EmitCell(uint64_t c, EdgeSink& sink) const {
    uint64_t cx = c % gx_;
    uint64_t cy = c / gx_;
    uint64_t start = CellStart(c);
    uint64_t end = CellStart(c + 1);
    NodeId anchor = static_cast<NodeId>(start);

    // Backbone: west/south anchor links (highway on the central lines of
    // the cell grid, arterial elsewhere) plus member -> anchor locals.
    if (cx > 0) {
      sink.Bidirectional(anchor, AnchorOf(c - 1),
                         cy == gy_ / 2 ? RoadClass::kHighway
                                       : RoadClass::kArterial);
    }
    if (cy > 0) {
      sink.Bidirectional(anchor, AnchorOf(c - gx_),
                         cx == gx_ / 2 ? RoadClass::kHighway
                                       : RoadClass::kArterial);
    }
    for (uint64_t v = start + 1; v < end; ++v) {
      sink.Bidirectional(anchor, static_cast<NodeId>(v), RoadClass::kLocal);
    }

    // Proximity edges: in-cell pairs (u < v), then forward neighbor cells.
    for (uint64_t u = start; u < end; ++u) {
      Point pu = NodePosition(static_cast<NodeId>(u));
      for (uint64_t v = u + 1; v < end; ++v) MaybeLink(u, pu, v, sink);
    }
    static constexpr int64_t kForward[4][2] = {{1, 0}, {0, 1}, {1, 1}, {1, -1}};
    for (const auto& d : kForward) {
      int64_t nx = static_cast<int64_t>(cx) + d[0];
      int64_t ny = static_cast<int64_t>(cy) + d[1];
      if (nx < 0 || ny < 0 || nx >= static_cast<int64_t>(gx_) ||
          ny >= static_cast<int64_t>(gy_)) {
        continue;
      }
      uint64_t nc = static_cast<uint64_t>(ny) * gx_ + static_cast<uint64_t>(nx);
      uint64_t ns = CellStart(nc);
      uint64_t ne = CellStart(nc + 1);
      for (uint64_t u = start; u < end; ++u) {
        Point pu = NodePosition(static_cast<NodeId>(u));
        for (uint64_t v = ns; v < ne; ++v) MaybeLink(u, pu, v, sink);
      }
    }
  }

  void MaybeLink(uint64_t u, const Point& pu, uint64_t v,
                 EdgeSink& sink) const {
    Point pv = NodePosition(static_cast<NodeId>(v));
    double dx = pu.x - pv.x;
    double dy = pu.y - pv.y;
    if (dx * dx + dy * dy <= radius_ * radius_) {
      sink.Bidirectional(static_cast<NodeId>(u), static_cast<NodeId>(v),
                         RoadClass::kLocal);
    }
  }

  StreamingGeometricOptions o_;
  double radius_;
  uint64_t gx_;
  uint64_t gy_;
  uint64_t cells_;
  double cell_w_;
  double cell_h_;
  uint64_t chunks_;
};

/// Preferential-attachment flavor of a hyperbolic random graph: node v
/// links to targets t = floor(v * u^skew) with u uniform in [0,1), so the
/// target distribution is a power law biased toward low ids. Low ids are
/// placed near the disk center (radius grows as sqrt(id/n), keeping areal
/// density uniform), giving the centrally-located hub structure and
/// heavy-tailed degree distribution of real highway networks. Every node
/// v >= 1 links to some t < v, so the (bidirectional) graph is connected
/// by construction.
class StreamingHyperbolicSource : public ChunkedEdgeSource {
 public:
  explicit StreamingHyperbolicSource(const StreamingHyperbolicOptions& o)
      : o_(o) {
    chunks_ = std::clamp<uint64_t>(o.num_chunks, 1, o.num_nodes);
    highway_cut_ = std::max<uint64_t>(2, o.num_nodes / 512);
    arterial_cut_ = std::max<uint64_t>(16, o.num_nodes / 32);
  }

  uint64_t NumNodes() const override { return o_.num_nodes; }
  uint64_t NumChunks() const override { return chunks_; }

  Point NodePosition(NodeId v) const override {
    double frac = (v + HashUnit(o_.seed, v, 0)) /
                  static_cast<double>(o_.num_nodes);
    double rad = o_.radius_m * std::sqrt(frac);
    double angle = 2.0 * M_PI * HashUnit(o_.seed, v, 1);
    return Point{o_.radius_m + rad * std::cos(angle),
                 o_.radius_m + rad * std::sin(angle)};
  }

  void EmitEdges(uint64_t chunk, EdgeSink& sink) const override {
    uint64_t v0 = std::max<uint64_t>(1, chunk * o_.num_nodes / chunks_);
    uint64_t v1 = (chunk + 1) * o_.num_nodes / chunks_;
    std::vector<uint64_t> seen(o_.out_links);
    for (uint64_t v = v0; v < v1; ++v) {
      uint32_t emitted = 0;
      for (uint32_t j = 0; j < o_.out_links; ++j) {
        double u = HashUnit(o_.seed, v, 100 + j);
        uint64_t t = static_cast<uint64_t>(
            static_cast<double>(v) * std::pow(u, o_.skew));
        if (t >= v) t = v - 1;  // FP guard; mathematically t < v already
        bool dup = false;
        for (uint32_t k = 0; k < emitted; ++k) dup |= seen[k] == t;
        if (dup) continue;  // skip rather than resample: deterministic
        seen[emitted++] = t;
        sink.Bidirectional(static_cast<NodeId>(v), static_cast<NodeId>(t),
                           ClassOf(t));
      }
    }
  }

 private:
  RoadClass ClassOf(uint64_t target) const {
    if (target < highway_cut_) return RoadClass::kHighway;
    if (target < arterial_cut_) return RoadClass::kArterial;
    return RoadClass::kLocal;
  }

  StreamingHyperbolicOptions o_;
  uint64_t chunks_;
  uint64_t highway_cut_;
  uint64_t arterial_cut_;
};

}  // namespace

Result<std::shared_ptr<RoadNetwork>> MakeStreamingGrid(
    const StreamingGridOptions& options) {
  if (options.nx < 2 || options.ny < 2) {
    return Status::InvalidArgument("grid needs at least 2x2 nodes");
  }
  if (options.spacing_m <= 0.0) {
    return Status::InvalidArgument("spacing must be positive");
  }
  if (options.nx > kMaxNodeCount / options.ny) {
    return Status::InvalidArgument("grid dimensions overflow the node limit");
  }
  StreamingGridSource source(options);
  return BuildFromChunkedSource(source);
}

Result<std::shared_ptr<RoadNetwork>> MakeStreamingGeometric(
    const StreamingGeometricOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  if (options.width_m <= 0.0 || options.height_m <= 0.0) {
    return Status::InvalidArgument("extent must be positive");
  }
  double radius = options.radius_m;
  if (radius <= 0.0) {
    if (options.target_degree <= 0.0) {
      return Status::InvalidArgument(
          "target_degree must be positive when radius is derived");
    }
    // E[neighbors within r] = n * pi * r^2 / (w * h), solved for r.
    radius = std::sqrt(options.target_degree * options.width_m *
                       options.height_m /
                       (M_PI * static_cast<double>(options.num_nodes)));
  }
  // Cell sides must be >= radius so only adjacent cells can hold neighbors;
  // cell count must be <= num_nodes so every cell has an anchor.
  uint64_t gx = std::max<uint64_t>(
      1, static_cast<uint64_t>(options.width_m / radius));
  uint64_t gy = std::max<uint64_t>(
      1, static_cast<uint64_t>(options.height_m / radius));
  while (gx * gy > options.num_nodes) {
    if (gx >= gy && gx > 1) {
      gx = (gx + 1) / 2;
    } else if (gy > 1) {
      gy = (gy + 1) / 2;
    } else {
      break;
    }
  }
  StreamingGeometricSource source(options, radius, gx, gy);
  return BuildFromChunkedSource(source);
}

Result<std::shared_ptr<RoadNetwork>> MakeStreamingHyperbolic(
    const StreamingHyperbolicOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  if (options.out_links < 1 || options.out_links > 64) {
    return Status::InvalidArgument("out_links must be in [1, 64]");
  }
  if (options.skew < 1.0) {
    return Status::InvalidArgument("skew must be >= 1");
  }
  if (options.radius_m <= 0.0) {
    return Status::InvalidArgument("radius must be positive");
  }
  StreamingHyperbolicSource source(options);
  return BuildFromChunkedSource(source);
}

// ---------------------------------------------------------------------------
// Option-string front end.
// ---------------------------------------------------------------------------

namespace {

/// Consumes `key=value` pairs out of a parsed spec; whatever is left after
/// a generator has taken its keys is an unknown-option error.
class SpecReader {
 public:
  explicit SpecReader(std::map<std::string, std::string> kv)
      : kv_(std::move(kv)) {}

  Status TakeU64(const char* key, uint64_t* out) {
    auto it = kv_.find(key);
    if (it == kv_.end()) return Status::OK();
    const std::string& s = it->second;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size() ||
        s.find('-') != std::string::npos) {
      return BadValue(key, s);
    }
    *out = parsed;
    kv_.erase(it);
    return Status::OK();
  }

  Status TakeI32(const char* key, int* out) {
    auto it = kv_.find(key);
    if (it == kv_.end()) return Status::OK();
    const std::string& s = it->second;
    char* end = nullptr;
    long parsed = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size() ||
        parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
      return BadValue(key, s);
    }
    *out = static_cast<int>(parsed);
    kv_.erase(it);
    return Status::OK();
  }

  Status TakeF64(const char* key, double* out) {
    auto it = kv_.find(key);
    if (it == kv_.end()) return Status::OK();
    const std::string& s = it->second;
    char* end = nullptr;
    double parsed = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size() || !std::isfinite(parsed)) {
      return BadValue(key, s);
    }
    *out = parsed;
    kv_.erase(it);
    return Status::OK();
  }

  Status CheckExhausted() const {
    if (!kv_.empty()) {
      return Status::InvalidArgument("unknown generator option '" +
                                     kv_.begin()->first + "'");
    }
    return Status::OK();
  }

 private:
  static Status BadValue(const char* key, const std::string& value) {
    return Status::InvalidArgument(std::string("bad value for '") + key +
                                   "': '" + value + "'");
  }

  std::map<std::string, std::string> kv_;
};

Result<std::map<std::string, std::string>> ParseSpec(const std::string& spec) {
  std::map<std::string, std::string> kv;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    size_t first = item.find_first_not_of(" \t");
    size_t last = item.find_last_not_of(" \t");
    if (first == std::string::npos) continue;
    item = item.substr(first, last - first + 1);
    size_t eq = item.find('=');
    std::string key = eq == std::string::npos ? item : item.substr(0, eq);
    std::string value = eq == std::string::npos ? "1" : item.substr(eq + 1);
    if (key.empty()) {
      return Status::InvalidArgument("empty key in generator spec: '" + spec +
                                     "'");
    }
    kv[key] = value;  // last occurrence wins
  }
  return kv;
}

}  // namespace

Result<std::shared_ptr<RoadNetwork>> GenerateNetwork(const std::string& spec) {
  ECOCHARGE_ASSIGN_OR_RETURN(auto kv, ParseSpec(spec));
  auto type_it = kv.find("type");
  if (type_it == kv.end()) {
    return Status::InvalidArgument(
        "generator spec needs a type= entry (grid, rgg, hyperbolic, radial, "
        "corridor)");
  }
  std::string type = type_it->second;
  kv.erase(type_it);
  SpecReader reader(std::move(kv));

  uint64_t validate = 1;
  ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("validate", &validate));

  Result<std::shared_ptr<RoadNetwork>> built =
      Status::Internal("generator did not run");
  if (type == "grid") {
    StreamingGridOptions o;
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("nx", &o.nx));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("ny", &o.ny));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("spacing", &o.spacing_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("jitter", &o.jitter_fraction));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("arterial_every",
                                           &o.arterial_every));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("seed", &o.seed));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("chunks", &o.num_chunks));
    ECOCHARGE_RETURN_NOT_OK(reader.CheckExhausted());
    built = MakeStreamingGrid(o);
  } else if (type == "rgg") {
    StreamingGeometricOptions o;
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("nodes", &o.num_nodes));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("width", &o.width_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("height", &o.height_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("radius", &o.radius_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("degree", &o.target_degree));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("seed", &o.seed));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("chunks", &o.num_chunks));
    ECOCHARGE_RETURN_NOT_OK(reader.CheckExhausted());
    built = MakeStreamingGeometric(o);
  } else if (type == "hyperbolic") {
    StreamingHyperbolicOptions o;
    uint64_t links = o.out_links;
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("nodes", &o.num_nodes));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("links", &links));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("skew", &o.skew));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("radius", &o.radius_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("seed", &o.seed));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("chunks", &o.num_chunks));
    ECOCHARGE_RETURN_NOT_OK(reader.CheckExhausted());
    if (links > 64) return Status::InvalidArgument("links must be in [1, 64]");
    o.out_links = static_cast<uint32_t>(links);
    built = MakeStreamingHyperbolic(o);
  } else if (type == "radial") {
    RadialCityOptions o;
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("rings", &o.rings));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("spokes", &o.spokes));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("ring_spacing", &o.ring_spacing_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("jitter", &o.jitter_fraction));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("seed", &o.seed));
    ECOCHARGE_RETURN_NOT_OK(reader.CheckExhausted());
    built = MakeRadialCity(o);
  } else if (type == "corridor") {
    CorridorRegionOptions o;
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("cities", &o.num_cities));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("city_nx", &o.city_nx));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeI32("city_ny", &o.city_ny));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("city_spacing",
                                           &o.city_spacing_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("width", &o.region_width_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeF64("height", &o.region_height_m));
    ECOCHARGE_RETURN_NOT_OK(reader.TakeU64("seed", &o.seed));
    ECOCHARGE_RETURN_NOT_OK(reader.CheckExhausted());
    built = MakeCorridorRegion(o);
  } else {
    return Status::InvalidArgument("unknown generator type '" + type + "'");
  }

  ECOCHARGE_RETURN_NOT_OK(built.status());
  if (validate != 0 && !(*built)->IsStronglyConnected()) {
    return Status::Internal("generated network is not strongly connected");
  }
  return built;
}

}  // namespace ecocharge
