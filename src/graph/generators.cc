#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "spatial/kdtree.h"

namespace ecocharge {

namespace {

/// Union-find used to patch disconnected components.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct PendingEdge {
  NodeId a;
  NodeId b;
  RoadClass road_class;
};

/// Adds edges joining components until one component remains: repeatedly
/// connects each minor component's node to its nearest node in a different
/// component (via kd-tree over all nodes).
void PatchConnectivity(const std::vector<Point>& positions,
                       std::vector<PendingEdge>& edges) {
  DisjointSet ds(positions.size());
  for (const PendingEdge& e : edges) ds.Union(e.a, e.b);

  KdTree tree;
  tree.Build(positions);
  bool merged = true;
  while (merged) {
    merged = false;
    // Group nodes by component root.
    std::vector<size_t> root(positions.size());
    size_t first_root = ds.Find(0);
    bool multiple = false;
    for (size_t i = 0; i < positions.size(); ++i) {
      root[i] = ds.Find(i);
      if (root[i] != first_root) multiple = true;
    }
    if (!multiple) break;
    // For the first node found in a non-primary component, link it to its
    // nearest foreign neighbor.
    for (size_t i = 0; i < positions.size(); ++i) {
      if (root[i] == first_root) continue;
      std::vector<Neighbor> nn =
          tree.Knn(positions[i], std::min<size_t>(positions.size(), 16));
      for (const Neighbor& cand : nn) {
        if (ds.Find(cand.id) != root[i]) {
          edges.push_back({static_cast<NodeId>(i), cand.id,
                           RoadClass::kArterial});
          ds.Union(i, cand.id);
          merged = true;
          break;
        }
      }
      if (merged) break;
    }
    if (!merged) {
      // Fallback: directly join to node 0 (possible when the 16-NN
      // neighborhood is entirely same-component).
      for (size_t i = 0; i < positions.size(); ++i) {
        if (ds.Find(i) != first_root) {
          edges.push_back({static_cast<NodeId>(i), 0, RoadClass::kArterial});
          ds.Union(i, 0);
          merged = true;
          break;
        }
      }
    }
  }
}

Result<std::shared_ptr<RoadNetwork>> BuildFrom(
    const std::vector<Point>& positions, std::vector<PendingEdge> edges) {
  PatchConnectivity(positions, edges);
  GraphBuilder builder;
  for (const Point& p : positions) builder.AddNode(p);
  for (const PendingEdge& e : edges) {
    ECOCHARGE_RETURN_NOT_OK(builder.AddBidirectional(e.a, e.b, e.road_class));
  }
  return builder.Build();
}

}  // namespace

Result<std::shared_ptr<RoadNetwork>> MakeGridNetwork(
    const GridNetworkOptions& options) {
  if (options.nx < 2 || options.ny < 2) {
    return Status::InvalidArgument("grid needs at least 2x2 nodes");
  }
  if (options.spacing_m <= 0.0) {
    return Status::InvalidArgument("spacing must be positive");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.reserve(static_cast<size_t>(options.nx) * options.ny);
  double jitter = options.spacing_m * options.jitter_fraction;
  for (int y = 0; y < options.ny; ++y) {
    for (int x = 0; x < options.nx; ++x) {
      positions.push_back(Point{x * options.spacing_m +
                                    rng.NextDouble(-jitter, jitter),
                                y * options.spacing_m +
                                    rng.NextDouble(-jitter, jitter)});
    }
  }
  auto node_at = [&](int x, int y) {
    return static_cast<NodeId>(y * options.nx + x);
  };
  auto line_class = [&](int index, int center) {
    if (index == center) return RoadClass::kHighway;
    if (options.arterial_every > 0 && index % options.arterial_every == 0) {
      return RoadClass::kArterial;
    }
    return RoadClass::kLocal;
  };
  std::vector<PendingEdge> edges;
  for (int y = 0; y < options.ny; ++y) {
    RoadClass row_class = line_class(y, options.ny / 2);
    for (int x = 0; x + 1 < options.nx; ++x) {
      edges.push_back({node_at(x, y), node_at(x + 1, y), row_class});
    }
  }
  for (int x = 0; x < options.nx; ++x) {
    RoadClass col_class = line_class(x, options.nx / 2);
    for (int y = 0; y + 1 < options.ny; ++y) {
      edges.push_back({node_at(x, y), node_at(x, y + 1), col_class});
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeRadialCity(
    const RadialCityOptions& options) {
  if (options.rings < 1 || options.spokes < 3) {
    return Status::InvalidArgument("need >=1 ring and >=3 spokes");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.push_back(Point{0.0, 0.0});  // center
  auto ring_node = [&](int ring, int spoke) {
    // Rings are 1-based; node ids: 1 + (ring-1)*spokes + spoke.
    return static_cast<NodeId>(1 + (ring - 1) * options.spokes + spoke);
  };
  double jitter = options.ring_spacing_m * options.jitter_fraction;
  for (int ring = 1; ring <= options.rings; ++ring) {
    double radius = ring * options.ring_spacing_m;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      double angle = 2.0 * M_PI * spoke / options.spokes;
      positions.push_back(
          Point{radius * std::cos(angle) + rng.NextDouble(-jitter, jitter),
                radius * std::sin(angle) + rng.NextDouble(-jitter, jitter)});
    }
  }
  std::vector<PendingEdge> edges;
  // Radial spokes: center -> ring1, ring_i -> ring_{i+1}. Inner radials are
  // arterials, the outermost ring connector stays arterial, spokes 0 and
  // spokes/2 form a highway axis.
  for (int spoke = 0; spoke < options.spokes; ++spoke) {
    RoadClass rc = (spoke == 0 || spoke == options.spokes / 2)
                       ? RoadClass::kHighway
                       : RoadClass::kArterial;
    edges.push_back({0, ring_node(1, spoke), rc});
    for (int ring = 1; ring < options.rings; ++ring) {
      edges.push_back({ring_node(ring, spoke), ring_node(ring + 1, spoke), rc});
    }
  }
  // Ring roads: local except the middle ring (arterial ring road).
  for (int ring = 1; ring <= options.rings; ++ring) {
    RoadClass rc = ring == (options.rings + 1) / 2 ? RoadClass::kArterial
                                                   : RoadClass::kLocal;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      edges.push_back({ring_node(ring, spoke),
                       ring_node(ring, (spoke + 1) % options.spokes), rc});
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeRandomGeometric(
    const RandomGeometricOptions& options) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  if (options.k_nearest < 1) {
    return Status::InvalidArgument("k_nearest must be >= 1");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.reserve(options.num_nodes);
  for (size_t i = 0; i < options.num_nodes; ++i) {
    positions.push_back(Point{rng.NextDouble(0.0, options.width_m),
                              rng.NextDouble(0.0, options.height_m)});
  }
  KdTree tree;
  tree.Build(positions);
  std::vector<PendingEdge> edges;
  for (size_t i = 0; i < positions.size(); ++i) {
    std::vector<Neighbor> nn = tree.Knn(
        positions[i], static_cast<size_t>(options.k_nearest) + 1);
    int linked = 0;
    for (const Neighbor& cand : nn) {
      if (cand.id == i) continue;
      RoadClass rc = linked == 0 ? RoadClass::kArterial : RoadClass::kLocal;
      if (cand.id > i) {  // avoid duplicate undirected pairs
        edges.push_back({static_cast<NodeId>(i), cand.id, rc});
      }
      if (++linked >= options.k_nearest) break;
    }
  }
  return BuildFrom(positions, std::move(edges));
}

Result<std::shared_ptr<RoadNetwork>> MakeCorridorRegion(
    const CorridorRegionOptions& options) {
  if (options.num_cities < 1) {
    return Status::InvalidArgument("need at least one city");
  }
  Rng rng(options.seed);
  std::vector<Point> positions;
  std::vector<PendingEdge> edges;
  std::vector<NodeId> city_centers;

  for (int city = 0; city < options.num_cities; ++city) {
    double cx = rng.NextDouble(0.1, 0.9) * options.region_width_m;
    double cy = rng.NextDouble(0.1, 0.9) * options.region_height_m;
    NodeId base = static_cast<NodeId>(positions.size());
    double jitter = options.city_spacing_m * 0.15;
    for (int y = 0; y < options.city_ny; ++y) {
      for (int x = 0; x < options.city_nx; ++x) {
        positions.push_back(Point{
            cx + (x - options.city_nx / 2) * options.city_spacing_m +
                rng.NextDouble(-jitter, jitter),
            cy + (y - options.city_ny / 2) * options.city_spacing_m +
                rng.NextDouble(-jitter, jitter)});
      }
    }
    auto node_at = [&](int x, int y) {
      return static_cast<NodeId>(base + y * options.city_nx + x);
    };
    for (int y = 0; y < options.city_ny; ++y) {
      RoadClass rc = y == options.city_ny / 2 ? RoadClass::kArterial
                                              : RoadClass::kLocal;
      for (int x = 0; x + 1 < options.city_nx; ++x) {
        edges.push_back({node_at(x, y), node_at(x + 1, y), rc});
      }
    }
    for (int x = 0; x < options.city_nx; ++x) {
      RoadClass rc = x == options.city_nx / 2 ? RoadClass::kArterial
                                              : RoadClass::kLocal;
      for (int y = 0; y + 1 < options.city_ny; ++y) {
        edges.push_back({node_at(x, y), node_at(x, y + 1), rc});
      }
    }
    city_centers.push_back(
        node_at(options.city_nx / 2, options.city_ny / 2));
  }

  // Highway corridors: chain cities in x-order, with waypoint nodes every
  // ~10 km so trajectories can follow the corridor smoothly.
  std::vector<size_t> order(city_centers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return positions[city_centers[a]].x < positions[city_centers[b]].x;
  });
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    NodeId from = city_centers[order[i]];
    NodeId to = city_centers[order[i + 1]];
    Point a = positions[from];
    Point b = positions[to];
    double dist = Distance(a, b);
    int hops = std::max(1, static_cast<int>(dist / 10000.0));
    NodeId prev = from;
    for (int h = 1; h < hops; ++h) {
      double t = static_cast<double>(h) / hops;
      Point mid = a + (b - a) * t;
      mid.y += rng.NextGaussian(0.0, dist * 0.01);
      NodeId wp = static_cast<NodeId>(positions.size());
      positions.push_back(mid);
      edges.push_back({prev, wp, RoadClass::kHighway});
      prev = wp;
    }
    edges.push_back({prev, to, RoadClass::kHighway});
  }
  return BuildFrom(positions, std::move(edges));
}

}  // namespace ecocharge
