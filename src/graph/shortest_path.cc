#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

namespace ecocharge {

double LengthCost(const Arc& a) { return a.length_m; }

double FreeFlowTimeCost(const Arc& a) { return a.FreeFlowSeconds(); }

DijkstraSearch::DijkstraSearch(const RoadNetwork& network)
    : network_(network),
      labels_(network.NumNodes(), NodeLabel{kInfiniteCost, kInvalidNode, 0}),
      settled_version_(network.NumNodes(), 0),
      target_version_(network.NumNodes(), 0) {}

void DijkstraSearch::NewEpoch() {
  ++epoch_;
  if (epoch_ == 0) {
    // Wrapped around: hard reset.
    for (NodeLabel& label : labels_) label.version = 0;
    std::fill(settled_version_.begin(), settled_version_.end(), 0);
    std::fill(target_version_.begin(), target_version_.end(), 0);
    epoch_ = 1;
  }
  last_settled_ = 0;
}

std::vector<NodeId> DijkstraSearch::ReconstructPath(NodeId source,
                                                    NodeId target) const {
  std::vector<NodeId> nodes;
  NodeId v = target;
  while (v != kInvalidNode) {
    nodes.push_back(v);
    if (v == source) break;
    v = labels_[v].parent;
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

namespace {

struct HeapEntry {
  double priority;
  NodeId node;
  bool operator>(const HeapEntry& o) const { return priority > o.priority; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

PathResult DijkstraSearch::ShortestPath(NodeId source, NodeId target,
                                        const EdgeCostFn& cost) {
  PathResult result;
  if (source >= network_.NumNodes() || target >= network_.NumNodes()) {
    return result;
  }
  NewEpoch();
  MinHeap heap;
  labels_[source] = {0.0, kInvalidNode, epoch_};
  heap.push({0.0, source});

  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (settled_version_[v] == epoch_) continue;  // stale heap entry
    settled_version_[v] = epoch_;
    ++last_settled_;
    if (v == target) {
      result.cost = labels_[v].dist;
      result.nodes = ReconstructPath(source, target);
      return result;
    }
    const double dv = labels_[v].dist;  // loop-invariant: no self-loops
    for (const Arc& a : network_.OutArcs(v)) {
      double nd = dv + cost(a);
      NodeLabel& lw = labels_[a.node];
      if (lw.version != epoch_ || nd < lw.dist) {
        lw = {nd, v, epoch_};
        heap.push({nd, a.node});
      }
    }
  }
  return result;  // unreachable
}

PathResult DijkstraSearch::AStar(NodeId source, NodeId target,
                                 const EdgeCostFn& cost,
                                 double heuristic_scale) {
  PathResult result;
  if (source >= network_.NumNodes() || target >= network_.NumNodes()) {
    return result;
  }
  NewEpoch();
  const Point& goal = network_.NodePosition(target);
  auto h = [&](NodeId v) {
    return Distance(network_.NodePosition(v), goal) * heuristic_scale;
  };
  MinHeap heap;
  labels_[source] = {0.0, kInvalidNode, epoch_};
  heap.push({h(source), source});

  while (!heap.empty()) {
    auto [f, v] = heap.top();
    heap.pop();
    if (settled_version_[v] == epoch_) continue;  // stale heap entry
    settled_version_[v] = epoch_;
    ++last_settled_;
    if (v == target) {
      result.cost = labels_[v].dist;
      result.nodes = ReconstructPath(source, target);
      return result;
    }
    const double dv = labels_[v].dist;  // loop-invariant: no self-loops
    for (const Arc& a : network_.OutArcs(v)) {
      double nd = dv + cost(a);
      NodeLabel& lw = labels_[a.node];
      if (lw.version != epoch_ || nd < lw.dist) {
        lw = {nd, v, epoch_};
        heap.push({nd + h(a.node), a.node});
      }
    }
  }
  return result;
}

size_t DijkstraSearch::OneToMany(NodeId source, double max_cost,
                                 const EdgeCostFn& cost,
                                 std::vector<NodeId>* settled_out) {
  if (source >= network_.NumNodes()) return 0;
  NewEpoch();
  if (settled_out) settled_out->clear();
  MinHeap heap;
  labels_[source] = {0.0, kInvalidNode, epoch_};
  heap.push({0.0, source});

  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (settled_version_[v] == epoch_) continue;  // stale heap entry
    if (d > max_cost) break;
    settled_version_[v] = epoch_;
    ++last_settled_;
    if (settled_out) settled_out->push_back(v);
    const double dv = labels_[v].dist;  // loop-invariant: no self-loops
    for (const Arc& a : network_.OutArcs(v)) {
      double nd = dv + cost(a);
      if (nd > max_cost) continue;
      NodeLabel& lw = labels_[a.node];
      if (lw.version != epoch_ || nd < lw.dist) {
        lw = {nd, v, epoch_};
        heap.push({nd, a.node});
      }
    }
  }
  return last_settled_;
}

size_t DijkstraSearch::OneToMany(NodeId source,
                                 std::span<const NodeId> targets,
                                 const EdgeCostFn& cost) {
  NodeId sources[1] = {source};
  StartSweep(std::span<const NodeId>(sources, 1), SweepDirection::kForward);
  return ExtendSweep(targets, cost);
}

void DijkstraSearch::StartSweep(std::span<const NodeId> sources,
                                SweepDirection direction) {
  NewEpoch();
  direction_ = direction;
  frontier_.clear();
  for (NodeId s : sources) {
    if (s >= network_.NumNodes() || labels_[s].version == epoch_) continue;
    labels_[s] = {0.0, kInvalidNode, epoch_};
    frontier_.push_back({0.0, s});
    std::push_heap(frontier_.begin(), frontier_.end(), SweepLater);
  }
}

size_t DijkstraSearch::ExtendSweep(std::span<const NodeId> targets,
                                   const EdgeCostFn& cost) {
  const size_t n = network_.NumNodes();
  // Count the distinct, valid, not-yet-final targets this call must reach.
  // A target stamped by an earlier extension of this sweep but still
  // unsettled can only mean the frontier is already exhausted (extensions
  // return only when pending hits zero or the frontier empties), so it is
  // correct to skip it here as well.
  size_t pending = 0;
  for (NodeId t : targets) {
    if (t >= n || settled_version_[t] == epoch_ ||
        target_version_[t] == epoch_) {
      continue;
    }
    target_version_[t] = epoch_;
    ++pending;
  }

  // The settle/relax loop is byte-for-byte the work ShortestPath does; the
  // target set only decides when to STOP, never what gets relaxed. That is
  // the property the derouting batch relies on for bit-identical costs: a
  // sweep asked for one target and a sweep asked for many perform the same
  // pop/relax prefix, so every settled distance is the same double.
  const bool forward = direction_ == SweepDirection::kForward;
  while (pending > 0 && !frontier_.empty()) {
    std::pop_heap(frontier_.begin(), frontier_.end(), SweepLater);
    const NodeId v = frontier_.back().node;
    frontier_.pop_back();
    if (settled_version_[v] == epoch_) continue;  // stale heap entry
    settled_version_[v] = epoch_;
    ++last_settled_;
    if (target_version_[v] == epoch_) --pending;
    auto arcs = forward ? network_.OutArcs(v) : network_.InArcs(v);
    const double dv = labels_[v].dist;  // loop-invariant: no self-loops
    for (const Arc& a : arcs) {
      const NodeId w = a.node;
      // No settled pre-check: a settled w holds its final minimal distance,
      // so nd >= labels_[w].dist always and the label test rejects it.
      double nd = dv + cost(a);
      NodeLabel& lw = labels_[w];
      if (lw.version != epoch_ || nd < lw.dist) {
        lw = {nd, v, epoch_};
        frontier_.push_back({nd, w});
        std::push_heap(frontier_.begin(), frontier_.end(), SweepLater);
      }
    }
  }

  size_t settled_targets = 0;
  for (NodeId t : targets) {
    if (t < n && settled_version_[t] == epoch_) ++settled_targets;
  }
  return settled_targets;
}

PathResult BidirectionalShortestPath(const RoadNetwork& network,
                                     NodeId source, NodeId target,
                                     const EdgeCostFn& cost) {
  PathResult result;
  size_t n = network.NumNodes();
  if (source >= n || target >= n) return result;
  if (source == target) {
    result.cost = 0.0;
    result.nodes = {source};
    return result;
  }

  // State per direction: 0 = forward from source, 1 = backward from target.
  std::vector<double> dist[2] = {std::vector<double>(n, kInfiniteCost),
                                 std::vector<double>(n, kInfiniteCost)};
  std::vector<NodeId> parent[2] = {std::vector<NodeId>(n, kInvalidNode),
                                   std::vector<NodeId>(n, kInvalidNode)};
  std::vector<char> settled[2] = {std::vector<char>(n, 0),
                                  std::vector<char>(n, 0)};
  MinHeap heap[2];
  dist[0][source] = 0.0;
  dist[1][target] = 0.0;
  heap[0].push({0.0, source});
  heap[1].push({0.0, target});

  double best = kInfiniteCost;
  NodeId meeting = kInvalidNode;

  while (!heap[0].empty() || !heap[1].empty()) {
    // Alternate on the smaller frontier top.
    int side;
    if (heap[0].empty()) {
      side = 1;
    } else if (heap[1].empty()) {
      side = 0;
    } else {
      side = heap[0].top().priority <= heap[1].top().priority ? 0 : 1;
    }
    auto [d, v] = heap[side].top();
    heap[side].pop();
    if (settled[side][v]) continue;
    settled[side][v] = 1;

    // Termination: once the two settled radii together exceed the best
    // connection found, no better path exists.
    double other_top =
        heap[1 - side].empty() ? kInfiniteCost : heap[1 - side].top().priority;
    if (d + (std::isfinite(other_top) ? other_top : 0.0) >= best &&
        std::isfinite(best)) {
      break;
    }

    bool forward = side == 0;
    auto arcs = forward ? network.OutArcs(v) : network.InArcs(v);
    for (const Arc& a : arcs) {
      NodeId w = a.node;
      double nd = d + cost(a);
      if (nd < dist[side][w]) {
        dist[side][w] = nd;
        parent[side][w] = v;
        heap[side].push({nd, w});
      }
      // Candidate connection through w.
      double via = dist[side][w] + dist[1 - side][w];
      if (via < best) {
        best = via;
        meeting = w;
      }
    }
  }

  if (meeting == kInvalidNode || !std::isfinite(best)) return result;
  // Report the cost consistent with the final parent pointers (distances
  // can only have improved since `best` was last updated).
  result.cost = dist[0][meeting] + dist[1][meeting];
  // Forward half: meeting back to source.
  std::vector<NodeId> forward_half;
  for (NodeId v = meeting; v != kInvalidNode; v = parent[0][v]) {
    forward_half.push_back(v);
    if (v == source) break;
  }
  std::reverse(forward_half.begin(), forward_half.end());
  // Backward half: meeting toward target (parents lead to target).
  std::vector<NodeId> backward_half;
  for (NodeId v = parent[1][meeting]; v != kInvalidNode; v = parent[1][v]) {
    backward_half.push_back(v);
    if (v == target) break;
  }
  result.nodes = std::move(forward_half);
  result.nodes.insert(result.nodes.end(), backward_half.begin(),
                      backward_half.end());
  return result;
}

PathResult BellmanFordShortestPath(const RoadNetwork& network, NodeId source,
                                   NodeId target, const EdgeCostFn& cost) {
  PathResult result;
  size_t n = network.NumNodes();
  if (source >= n || target >= n) return result;
  std::vector<double> dist(n, kInfiniteCost);
  std::vector<NodeId> parent(n, kInvalidNode);
  dist[source] = 0.0;
  bool changed = true;
  for (size_t round = 0; round + 1 < n && changed; ++round) {
    changed = false;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kInfiniteCost) continue;
      for (const Arc& a : network.OutArcs(v)) {
        double nd = dist[v] + cost(a);
        if (nd < dist[a.node]) {
          dist[a.node] = nd;
          parent[a.node] = v;
          changed = true;
        }
      }
    }
  }
  if (dist[target] == kInfiniteCost) return result;
  result.cost = dist[target];
  NodeId v = target;
  while (v != kInvalidNode) {
    result.nodes.push_back(v);
    if (v == source) break;
    v = parent[v];
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace ecocharge
