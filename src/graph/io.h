#ifndef ECOCHARGE_GRAPH_IO_H_
#define ECOCHARGE_GRAPH_IO_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

class LandmarkIndex;

/// \brief Text serialization for road networks.
///
/// Format (whitespace separated):
///   ecg 1                 -- magic + version
///   <num_nodes> <num_edges>
///   x y                   -- one line per node
///   from to length class  -- one line per edge; class in {0,1,2}
///
/// Byte size of one contraction-hierarchy arc record as stored in a
/// snapshot. The graph layer treats CH arcs as opaque fixed-width records
/// (the ch subsystem static_asserts its ChArc layout against this), so io
/// stays ignorant of the CH internals while still validating section sizes.
inline constexpr uint64_t kChSnapshotArcBytes = 32;

/// \brief Zero-copy views of a snapshot's contraction-hierarchy section
/// set: the node rank permutation plus the upward/downward shortcut CSR.
/// Arc payloads are opaque bytes (kChSnapshotArcBytes per record);
/// `ChIndexFromSnapshot` (ch/ch_index.h) reinterprets and validates them.
struct ChSnapshotViews {
  std::span<const uint32_t> rank;
  std::span<const uint32_t> up_offsets;
  std::span<const uint32_t> down_offsets;
  std::span<const std::byte> up_arcs;
  std::span<const std::byte> down_arcs;
  std::shared_ptr<const void> backing;  ///< keeps the spans alive
};

/// Chosen over a binary format for diffability of the checked-in fixtures.
Status SaveRoadNetwork(const RoadNetwork& network, std::ostream& os);
Status SaveRoadNetworkFile(const RoadNetwork& network,
                           const std::string& path);

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetwork(std::istream& is);
Result<std::shared_ptr<RoadNetwork>> LoadRoadNetworkFile(
    const std::string& path);

/// \brief Versioned binary snapshot with zero-copy mmap load.
///
/// Layout: a fixed header (magic "ECGSNAP\0", version, counts, bounds,
/// locator shape), a section table, then 64-byte-aligned sections holding
/// the network's raw arrays — positions, both CSR directions, the
/// node-locator grid, and optionally the landmark tables. LoadSnapshot
/// maps the file read-only and serves every array straight out of the
/// mapping (the landmark tables are the one copied part, since
/// LandmarkIndex owns vectors). Byte order and Arc layout are
/// host-native; snapshots are machine-local artifacts, not an exchange
/// format. Versioning rule: any layout change bumps the version, and
/// loaders reject versions they were not built for.
///
/// The save writes `path + ".tmp"` and renames it into place, so saving
/// over the snapshot a loaded (mmap-backed) network came from is safe —
/// `graph ch --in X --out X` depends on this.
Status SaveSnapshot(const RoadNetwork& network, const std::string& path,
                    const LandmarkIndex* landmarks = nullptr,
                    const ChSnapshotViews* ch = nullptr);

/// Maps a snapshot read-only; the returned network's arrays alias the
/// mapping, which stays alive for the network's lifetime.
Result<std::shared_ptr<RoadNetwork>> LoadSnapshot(const std::string& path);

struct LoadedSnapshot {
  std::shared_ptr<RoadNetwork> network;
  /// Present when the snapshot carries landmark tables.
  std::unique_ptr<LandmarkIndex> landmarks;
  /// Present when the snapshot carries a contraction hierarchy; views alias
  /// the mapping (zero-copy, like the network arrays).
  std::optional<ChSnapshotViews> ch;
};

/// LoadSnapshot plus rehydration of any stored landmark tables.
Result<LoadedSnapshot> LoadSnapshotWithLandmarks(const std::string& path);

/// LoadSnapshot plus every auxiliary section: landmark tables and the
/// contraction-hierarchy views (when stored).
Result<LoadedSnapshot> LoadSnapshotWithAux(const std::string& path);

/// Header-level metadata, read without mapping the payload (`graph info`).
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t num_landmarks = 0;
  uint64_t file_bytes = 0;
  BoundingBox bounds;
  bool has_ch = false;        ///< carries a contraction-hierarchy section set
  uint64_t ch_up_arcs = 0;    ///< upward CH arcs (originals + shortcuts)
  uint64_t ch_down_arcs = 0;  ///< downward CH arcs
  std::vector<std::pair<uint32_t, uint64_t>> sections;  ///< (id, bytes)
};

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Human-readable name of a snapshot section id ("unknown" for ids this
/// build does not know) — `graph info` reports every section instead of
/// silently skipping unrecognized ones.
const char* SnapshotSectionName(uint32_t id);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_IO_H_
