#ifndef ECOCHARGE_GRAPH_IO_H_
#define ECOCHARGE_GRAPH_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief Text serialization for road networks.
///
/// Format (whitespace separated):
///   ecg 1                 -- magic + version
///   <num_nodes> <num_edges>
///   x y                   -- one line per node
///   from to length class  -- one line per edge; class in {0,1,2}
///
/// Chosen over a binary format for diffability of the checked-in fixtures.
Status SaveRoadNetwork(const RoadNetwork& network, std::ostream& os);
Status SaveRoadNetworkFile(const RoadNetwork& network,
                           const std::string& path);

Result<std::shared_ptr<RoadNetwork>> LoadRoadNetwork(std::istream& is);
Result<std::shared_ptr<RoadNetwork>> LoadRoadNetworkFile(
    const std::string& path);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_IO_H_
