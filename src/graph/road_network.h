#ifndef ECOCHARGE_GRAPH_ROAD_NETWORK_H_
#define ECOCHARGE_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "spatial/grid_index.h"

namespace ecocharge {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// \brief Functional road class; drives free-flow speed and congestion shape.
enum class RoadClass : uint8_t {
  kHighway = 0,   ///< motorway / freeway
  kArterial = 1,  ///< major urban road
  kLocal = 2,     ///< residential / access road
};

/// Free-flow speed for a road class, meters per second.
double FreeFlowSpeed(RoadClass road_class);

/// \brief One directed edge of the road network.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  double length_m = 0.0;     ///< geometric length, meters
  RoadClass road_class = RoadClass::kLocal;

  /// Travel time at free-flow speed, seconds.
  double FreeFlowSeconds() const {
    return length_m / FreeFlowSpeed(road_class);
  }
};

/// \brief Immutable directed road network G = (V, E) in CSR layout.
///
/// Matches the paper's system model: nodes carry planar coordinates, edges
/// carry a weight (length / free-flow time; time-varying traffic multipliers
/// come from the traffic module). Built via GraphBuilder; query-side state
/// (shortest-path workspaces) lives outside so a network can be shared
/// read-only across vehicles.
class RoadNetwork {
 public:
  size_t NumNodes() const { return positions_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const Point& NodePosition(NodeId v) const { return positions_[v]; }
  const std::vector<Point>& positions() const { return positions_; }

  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Ids of edges leaving `v`.
  std::span<const EdgeId> OutEdges(NodeId v) const {
    return {out_adjacency_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Ids of edges entering `v`.
  std::span<const EdgeId> InEdges(NodeId v) const {
    return {in_adjacency_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// The network's bounding box.
  const BoundingBox& Bounds() const { return bounds_; }

  /// Nearest node to an arbitrary point (grid-accelerated).
  NodeId NearestNode(const Point& p) const;

  /// True if every node can reach every other node (strong connectivity);
  /// generator post-condition checked in tests.
  bool IsStronglyConnected() const;

 private:
  friend class GraphBuilder;
  RoadNetwork() = default;

  std::vector<Point> positions_;
  std::vector<Edge> edges_;
  std::vector<uint32_t> out_offsets_;
  std::vector<EdgeId> out_adjacency_;
  std::vector<uint32_t> in_offsets_;
  std::vector<EdgeId> in_adjacency_;
  BoundingBox bounds_;
  GridIndex node_locator_;
};

/// \brief Incrementally assembles a RoadNetwork.
class GraphBuilder {
 public:
  /// Adds a node at `position`, returning its id.
  NodeId AddNode(const Point& position);

  /// Adds a directed edge; length defaults to the Euclidean node distance.
  Status AddEdge(NodeId from, NodeId to, RoadClass road_class,
                 double length_m = -1.0);

  /// Adds both directions with identical attributes.
  Status AddBidirectional(NodeId a, NodeId b, RoadClass road_class,
                          double length_m = -1.0);

  size_t NumNodes() const { return positions_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Finalizes into an immutable network. Fails on an empty graph.
  Result<std::shared_ptr<RoadNetwork>> Build();

 private:
  std::vector<Point> positions_;
  std::vector<Edge> edges_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_ROAD_NETWORK_H_
