#ifndef ECOCHARGE_GRAPH_ROAD_NETWORK_H_
#define ECOCHARGE_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"

namespace ecocharge {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Hard capacity limits of the 32-bit id space. kInvalidNode is reserved as
/// a sentinel, so the largest representable node id is kInvalidNode - 1;
/// edge ids and CSR offsets are plain uint32_t counters.
inline constexpr uint64_t kMaxNodeCount = 0xFFFFFFFFull;  // ids 0..2^32-2
inline constexpr uint64_t kMaxEdgeCount = 0xFFFFFFFFull;

/// Explicit kInvalidArgument when a node or edge count would overflow the
/// 32-bit id/offset space. Both builders call this before allocating; unit
/// tests exercise it directly so the check does not need 4-billion-node
/// fixtures.
Status ValidateGraphCounts(uint64_t num_nodes, uint64_t num_edges);

/// \brief Functional road class; drives free-flow speed and congestion shape.
enum class RoadClass : uint8_t {
  kHighway = 0,   ///< motorway / freeway
  kArterial = 1,  ///< major urban road
  kLocal = 2,     ///< residential / access road
};

/// Free-flow speed for a road class, meters per second.
double FreeFlowSpeed(RoadClass road_class);

/// \brief One directed edge of the road network, endpoint-qualified.
///
/// This is the builder/serialization/introspection record. The query hot
/// paths never touch it — they stream over the inlined Arc records below.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  double length_m = 0.0;     ///< geometric length, meters
  RoadClass road_class = RoadClass::kLocal;

  /// Travel time at free-flow speed, seconds.
  double FreeFlowSeconds() const {
    return length_m / FreeFlowSpeed(road_class);
  }
};

/// \brief One inlined CSR adjacency record: the far endpoint plus the edge
/// attributes the relax loops need, in one 16-byte cache-friendly slot.
///
/// `node` is the target in the forward stream and the source in the backward
/// stream. The layout is fixed (trivially copyable, no padding surprises) —
/// snapshots mmap these arrays directly, so reordering fields is a snapshot
/// format change.
struct Arc {
  NodeId node = 0;
  RoadClass road_class = RoadClass::kLocal;
  // 3 bytes of padding.
  double length_m = 0.0;

  /// Travel time at free-flow speed, seconds.
  double FreeFlowSeconds() const {
    return length_m / FreeFlowSpeed(road_class);
  }
};

static_assert(sizeof(Arc) == 16, "Arc must stay a 16-byte snapshot record");
static_assert(std::is_trivially_copyable_v<Arc>, "Arc must be mmap-able");

/// \brief Iterable range of consecutive EdgeIds.
///
/// Edge ids are exactly the forward-CSR slot indices, so a node's out-edge
/// ids form a contiguous run; this keeps the historical
/// `for (EdgeId e : network.OutEdges(v))` call sites working without
/// materializing an id array.
class EdgeIdRange {
 public:
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = EdgeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const EdgeId*;
    using reference = EdgeId;

    explicit Iterator(EdgeId id) : id_(id) {}
    EdgeId operator*() const { return id_; }
    Iterator& operator++() {
      ++id_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return id_ == o.id_; }
    bool operator!=(const Iterator& o) const { return id_ != o.id_; }

   private:
    EdgeId id_;
  };

  EdgeIdRange(EdgeId begin, EdgeId end) : begin_(begin), end_(end) {}
  Iterator begin() const { return Iterator(begin_); }
  Iterator end() const { return Iterator(end_); }
  size_t size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }
  EdgeId operator[](size_t i) const { return begin_ + static_cast<EdgeId>(i); }

 private:
  EdgeId begin_;
  EdgeId end_;
};

/// \brief Immutable directed road network G = (V, E) in inlined CSR layout.
///
/// Matches the paper's system model: nodes carry planar coordinates, edges
/// carry a weight (length / free-flow time; time-varying traffic multipliers
/// come from the traffic module). Adjacency is stored as two contiguous
/// per-direction Arc streams — `(endpoint, road class, length)` inlined in
/// adjacency order and sorted by endpoint id within each node — so the
/// Dijkstra/sweep relax loop touches one stream instead of chasing
/// `adjacency[i] -> edges[e]` indirections. EdgeId is the index into the
/// forward stream.
///
/// All array members are read-only views; they are backed either by owned
/// vectors (builder path) or by an mmap-ed snapshot (zero-copy load path).
/// Query-side state (shortest-path workspaces) lives outside so a network
/// can be shared read-only across vehicles.
class RoadNetwork {
 public:
  /// Internal storage bundle used by the builders and the snapshot loader;
  /// not part of the stable query API. `backing` keeps whatever owns the
  /// bytes (vectors or an mmap region) alive for the network's lifetime.
  struct Views {
    std::span<const Point> positions;
    std::span<const uint32_t> out_offsets;  ///< size nodes+1
    std::span<const Arc> out_arcs;          ///< size edges
    std::span<const uint32_t> in_offsets;   ///< size nodes+1
    std::span<const Arc> in_arcs;           ///< size edges
    std::span<const EdgeId> in_edge_ids;    ///< forward id of each in-arc
    BoundingBox bounds;
    uint32_t locator_nx = 0;
    uint32_t locator_ny = 0;
    double locator_cell_m = 0.0;
    std::span<const uint32_t> locator_cell_offsets;  ///< size nx*ny+1
    std::span<const uint32_t> locator_cell_points;   ///< size nodes
    std::shared_ptr<const void> backing;
  };

  /// Validates view consistency (sizes, offset monotonicity) and wraps the
  /// bundle. Used by GraphBuilder, the streaming builder, and LoadSnapshot.
  static Result<std::shared_ptr<RoadNetwork>> FromViews(Views views);

  size_t NumNodes() const { return positions_.size(); }
  size_t NumEdges() const { return out_arcs_.size(); }

  const Point& NodePosition(NodeId v) const { return positions_[v]; }
  std::span<const Point> positions() const { return positions_; }

  /// Outgoing arcs of `v`: the hot-path accessor. One contiguous stream,
  /// sorted by target id.
  std::span<const Arc> OutArcs(NodeId v) const {
    return out_arcs_.subspan(out_offsets_[v],
                             out_offsets_[v + 1] - out_offsets_[v]);
  }

  /// Incoming arcs of `v` (`Arc::node` is the source node), sorted by
  /// source id.
  std::span<const Arc> InArcs(NodeId v) const {
    return in_arcs_.subspan(in_offsets_[v],
                            in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Forward-stream arc record of edge `e` (cheap; no endpoint recovery).
  const Arc& arc(EdgeId e) const { return out_arcs_[e]; }

  /// Id of the first out-edge of `v`; `OutArcs(v)[i]` is edge
  /// `FirstOutEdge(v) + i`.
  EdgeId FirstOutEdge(NodeId v) const { return out_offsets_[v]; }

  /// Source node of edge `e`, recovered by binary search over the offsets
  /// (O(log V) — use arc()/OutArcs() in hot loops).
  NodeId EdgeSource(EdgeId e) const;

  /// Full endpoint-qualified record of edge `e`, materialized by value.
  /// Kept for serialization, route resolution, and tests; hot loops use
  /// OutArcs/InArcs.
  Edge edge(EdgeId e) const {
    const Arc& a = out_arcs_[e];
    return Edge{EdgeSource(e), a.node, a.length_m, a.road_class};
  }

  /// Ids of edges leaving `v` (a contiguous run of the forward stream).
  EdgeIdRange OutEdges(NodeId v) const {
    return EdgeIdRange(out_offsets_[v], out_offsets_[v + 1]);
  }

  /// Ids of edges entering `v`.
  std::span<const EdgeId> InEdges(NodeId v) const {
    return in_edge_ids_.subspan(in_offsets_[v],
                                in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// The network's bounding box.
  const BoundingBox& Bounds() const { return bounds_; }

  /// Nearest node to an arbitrary point (grid-accelerated; ties broken by
  /// smallest node id).
  NodeId NearestNode(const Point& p) const;

  /// True if every node can reach every other node (strong connectivity);
  /// generator post-condition checked in tests.
  bool IsStronglyConnected() const;

  // Raw array views, exposed for snapshot serialization (io.cc). The spans
  // alias the network's backing storage.
  std::span<const uint32_t> out_offsets() const { return out_offsets_; }
  std::span<const Arc> out_arcs() const { return out_arcs_; }
  std::span<const uint32_t> in_offsets() const { return in_offsets_; }
  std::span<const Arc> in_arcs() const { return in_arcs_; }
  std::span<const EdgeId> in_edge_ids() const { return in_edge_ids_; }
  uint32_t locator_nx() const { return locator_nx_; }
  uint32_t locator_ny() const { return locator_ny_; }
  double locator_cell_m() const { return locator_cell_m_; }
  std::span<const uint32_t> locator_cell_offsets() const {
    return locator_cell_offsets_;
  }
  std::span<const uint32_t> locator_cell_points() const {
    return locator_cell_points_;
  }

 private:
  RoadNetwork() = default;

  std::span<const Point> positions_;
  std::span<const uint32_t> out_offsets_;
  std::span<const Arc> out_arcs_;
  std::span<const uint32_t> in_offsets_;
  std::span<const Arc> in_arcs_;
  std::span<const EdgeId> in_edge_ids_;
  BoundingBox bounds_;

  // Flat uniform-grid node locator (mmap-able, unlike the pointer-heavy
  // spatial indexes): node ids bucketed by cell in CSR form.
  uint32_t locator_nx_ = 0;
  uint32_t locator_ny_ = 0;
  double locator_cell_m_ = 0.0;
  std::span<const uint32_t> locator_cell_offsets_;
  std::span<const uint32_t> locator_cell_points_;

  std::shared_ptr<const void> backing_;
};

/// \brief Incrementally assembles a RoadNetwork from explicit Add calls.
///
/// Materializes the full edge list, so it is meant for city-scale fixtures
/// and file loads; continental-scale graphs go through
/// BuildFromChunkedSource, which never holds more than one chunk of edges.
class GraphBuilder {
 public:
  /// Adds a node at `position`, returning its id.
  NodeId AddNode(const Point& position);

  /// Adds a directed edge; length defaults to the Euclidean node distance.
  Status AddEdge(NodeId from, NodeId to, RoadClass road_class,
                 double length_m = -1.0);

  /// Adds both directions with identical attributes.
  Status AddBidirectional(NodeId a, NodeId b, RoadClass road_class,
                          double length_m = -1.0);

  size_t NumNodes() const { return positions_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Finalizes into an immutable network. Fails on an empty graph or on
  /// counts that overflow the 32-bit id space.
  Result<std::shared_ptr<RoadNetwork>> Build();

 private:
  std::vector<Point> positions_;
  std::vector<Edge> edges_;
};

/// \brief Edge-emission target handed to chunked sources during streaming
/// construction. Lengths < 0 default to the Euclidean node distance.
class EdgeSink {
 public:
  virtual void Directed(NodeId from, NodeId to, RoadClass road_class,
                        double length_m = -1.0) = 0;
  void Bidirectional(NodeId a, NodeId b, RoadClass road_class,
                     double length_m = -1.0) {
    Directed(a, b, road_class, length_m);
    Directed(b, a, road_class, length_m);
  }

 protected:
  ~EdgeSink() = default;
};

/// \brief A graph source that can re-emit its edges chunk by chunk.
///
/// The KaGen-style contract: EmitEdges(c, ...) must emit the same edges for
/// chunk `c` every time it is called (the builder replays the stream for the
/// count and scatter passes), every edge must be emitted by exactly one
/// chunk, and NodePosition must be a pure function of the node id. Under
/// that contract the built network is identical for any chunk partition.
class ChunkedEdgeSource {
 public:
  virtual ~ChunkedEdgeSource() = default;
  virtual uint64_t NumNodes() const = 0;
  virtual uint64_t NumChunks() const = 0;
  virtual Point NodePosition(NodeId v) const = 0;
  virtual void EmitEdges(uint64_t chunk, EdgeSink& sink) const = 0;
};

/// \brief Two-pass streaming CSR construction: pass 1 counts degrees, pass 2
/// scatters arcs straight into their final slots. Peak memory is the final
/// CSR arrays plus one degree-cursor array — no edge-list materialization.
Result<std::shared_ptr<RoadNetwork>> BuildFromChunkedSource(
    const ChunkedEdgeSource& source);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_ROAD_NETWORK_H_
