#ifndef ECOCHARGE_GRAPH_GENERATORS_H_
#define ECOCHARGE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief Manhattan-style grid city (all edges bidirectional).
///
/// Every `arterial_every`-th row/column is an arterial; the central row and
/// column are highways. Node positions are jittered so the network is not
/// axis-degenerate. The result is strongly connected.
struct GridNetworkOptions {
  int nx = 20;                     ///< nodes along x
  int ny = 20;                     ///< nodes along y
  double spacing_m = 500.0;        ///< nominal block size
  double jitter_fraction = 0.15;   ///< position noise as a fraction of spacing
  int arterial_every = 5;          ///< every k-th line is an arterial
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeGridNetwork(
    const GridNetworkOptions& options);

/// \brief European-style ring-and-radial city (all edges bidirectional).
struct RadialCityOptions {
  int rings = 6;                  ///< concentric rings
  int spokes = 12;                ///< radial roads
  double ring_spacing_m = 800.0;  ///< distance between rings
  double jitter_fraction = 0.1;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeRadialCity(
    const RadialCityOptions& options);

/// \brief Random geometric graph: uniform nodes, each linked to its
/// `k_nearest` neighbors, plus patch edges to guarantee connectivity.
struct RandomGeometricOptions {
  size_t num_nodes = 1000;
  double width_m = 20000.0;
  double height_m = 20000.0;
  int k_nearest = 4;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeRandomGeometric(
    const RandomGeometricOptions& options);

/// \brief Multi-city region: grid-city clusters joined by highway corridors.
///
/// Models large extents like the paper's California dataset (1,220 x 400 km
/// with dense urban pockets along sparse long-haul corridors).
struct CorridorRegionOptions {
  int num_cities = 5;
  int city_nx = 12;  ///< grid size of each city
  int city_ny = 12;
  double city_spacing_m = 600.0;   ///< block size inside cities
  double region_width_m = 400000.0;
  double region_height_m = 150000.0;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeCorridorRegion(
    const CorridorRegionOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_GENERATORS_H_
