#ifndef ECOCHARGE_GRAPH_GENERATORS_H_
#define ECOCHARGE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief Manhattan-style grid city (all edges bidirectional).
///
/// Every `arterial_every`-th row/column is an arterial; the central row and
/// column are highways. Node positions are jittered so the network is not
/// axis-degenerate. The result is strongly connected.
struct GridNetworkOptions {
  int nx = 20;                     ///< nodes along x
  int ny = 20;                     ///< nodes along y
  double spacing_m = 500.0;        ///< nominal block size
  double jitter_fraction = 0.15;   ///< position noise as a fraction of spacing
  int arterial_every = 5;          ///< every k-th line is an arterial
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeGridNetwork(
    const GridNetworkOptions& options);

/// \brief European-style ring-and-radial city (all edges bidirectional).
struct RadialCityOptions {
  int rings = 6;                  ///< concentric rings
  int spokes = 12;                ///< radial roads
  double ring_spacing_m = 800.0;  ///< distance between rings
  double jitter_fraction = 0.1;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeRadialCity(
    const RadialCityOptions& options);

/// \brief Random geometric graph: uniform nodes, each linked to its
/// `k_nearest` neighbors, plus patch edges to guarantee connectivity.
struct RandomGeometricOptions {
  size_t num_nodes = 1000;
  double width_m = 20000.0;
  double height_m = 20000.0;
  int k_nearest = 4;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeRandomGeometric(
    const RandomGeometricOptions& options);

/// \brief Multi-city region: grid-city clusters joined by highway corridors.
///
/// Models large extents like the paper's California dataset (1,220 x 400 km
/// with dense urban pockets along sparse long-haul corridors).
struct CorridorRegionOptions {
  int num_cities = 5;
  int city_nx = 12;  ///< grid size of each city
  int city_ny = 12;
  double city_spacing_m = 600.0;   ///< block size inside cities
  double region_width_m = 400000.0;
  double region_height_m = 150000.0;
  uint64_t seed = 1;
};

Result<std::shared_ptr<RoadNetwork>> MakeCorridorRegion(
    const CorridorRegionOptions& options);

// ---------------------------------------------------------------------------
// Streaming generators (KaGen-style chunked emission).
//
// Each generator below is a ChunkedEdgeSource: node positions are pure hash
// functions of the node id and edges are emitted chunk by chunk, so a
// continental-scale graph streams straight into the two-pass CSR builder
// without ever materializing an edge list. The built network is identical
// for any chunk count, and strongly connected by construction.
// ---------------------------------------------------------------------------

/// \brief Chunked Manhattan grid; same topology family as MakeGridNetwork
/// but with order-independent per-node jitter, sized for millions of nodes.
struct StreamingGridOptions {
  uint64_t nx = 100;               ///< nodes along x
  uint64_t ny = 100;               ///< nodes along y
  double spacing_m = 500.0;        ///< nominal block size
  double jitter_fraction = 0.15;   ///< position noise as a fraction of spacing
  int arterial_every = 5;          ///< every k-th line is an arterial
  uint64_t seed = 1;
  uint64_t num_chunks = 16;        ///< row-range chunks
};

Result<std::shared_ptr<RoadNetwork>> MakeStreamingGrid(
    const StreamingGridOptions& options);

/// \brief Chunked random-geometric graph: nodes bucketed into grid cells in
/// id-block order, proximity edges within a radius, plus a cell-anchor
/// backbone that guarantees strong connectivity without a patching pass.
struct StreamingGeometricOptions {
  uint64_t num_nodes = 100000;
  double width_m = 100000.0;
  double height_m = 100000.0;
  /// Proximity radius; <= 0 derives it from target_degree.
  double radius_m = 0.0;
  double target_degree = 6.0;  ///< expected proximity neighbors per node
  uint64_t seed = 1;
  uint64_t num_chunks = 16;    ///< cell-range chunks
};

Result<std::shared_ptr<RoadNetwork>> MakeStreamingGeometric(
    const StreamingGeometricOptions& options);

/// \brief Chunked hyperbolic-disk generator with highway-like degree skew:
/// low-id hub nodes sit near the disk center and every later node attaches
/// to `out_links` earlier nodes sampled with a power-law bias toward the
/// hubs, yielding the heavy-tailed degree distribution of real highway
/// networks. Connected by construction (every node reaches node 0).
struct StreamingHyperbolicOptions {
  uint64_t num_nodes = 100000;
  uint32_t out_links = 3;      ///< undirected links from each node to earlier ones
  double skew = 3.0;           ///< >1; larger = stronger hub concentration
  double radius_m = 50000.0;   ///< disk radius
  uint64_t seed = 1;
  uint64_t num_chunks = 16;    ///< id-range chunks
};

Result<std::shared_ptr<RoadNetwork>> MakeStreamingHyperbolic(
    const StreamingHyperbolicOptions& options);

/// \brief Unified option-string entry point, KaGen style:
///   "type=grid;nx=1000;ny=1000;spacing=400;seed=7"
///
/// Keys are `key=value` pairs separated by ';' (a bare key is a flag with
/// value "1"). Types: grid, rgg, hyperbolic (streaming); radial, corridor
/// (legacy in-memory). Unknown types, unknown keys, and malformed numbers
/// return kInvalidArgument. `validate=0` skips the strong-connectivity
/// post-check (on by default); `chunks=N` sets the chunk count of the
/// streaming types.
Result<std::shared_ptr<RoadNetwork>> GenerateNetwork(const std::string& spec);

}  // namespace ecocharge

#endif  // ECOCHARGE_GRAPH_GENERATORS_H_
