#ifndef ECOCHARGE_CORE_ENVIRONMENT_H_
#define ECOCHARGE_CORE_ENVIRONMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "availability/availability_service.h"
#include "common/result.h"
#include "core/ec_estimator.h"
#include "energy/production.h"
#include "graph/landmarks.h"
#include "spatial/index_factory.h"
#include "spatial/spatial_index.h"
#include "traffic/congestion.h"
#include "traj/dataset.h"

namespace ecocharge {

/// \brief One fully-wired simulation world: dataset + chargers + the
/// ground-truth/forecast services + the EC estimator + the charger index.
/// Everything benches, tests, and examples need to run rankers.
///
/// Heap-allocated (MakeEnvironment returns a unique_ptr) because the
/// estimator holds pointers into the sibling members; moving the struct
/// itself would dangle them.
struct Environment {
  Dataset dataset;
  std::vector<EvCharger> chargers;
  std::unique_ptr<SolarEnergyService> energy;
  std::unique_ptr<AvailabilityService> availability;
  std::unique_ptr<CongestionModel> congestion;
  std::unique_ptr<EcEstimator> estimator;
  SpatialIndexKind index_kind = SpatialIndexKind::kQuadTree;
  std::unique_ptr<SpatialIndex> charger_index;  ///< ids = indices in chargers
  std::unique_ptr<LandmarkIndex> landmarks;  ///< null unless num_landmarks > 0
  /// Contraction hierarchy backing the CH derouting backend; null unless
  /// derouting_backend == kCh. Loaded zero-copy from the snapshot's CH
  /// section when one exists, contracted from scratch otherwise.
  std::shared_ptr<const ChIndex> ch;
  /// Process-shared customization cache over `ch` (null unless the CH
  /// backend is on and ch_shared_cache was left enabled). Estimators built
  /// from estimator->options() inherit it, so every server worker sources
  /// congestion-bucket planes here instead of pricing privately.
  std::shared_ptr<ChCustomizationCache> ch_cache;
};

/// \brief World-building knobs.
struct EnvironmentOptions {
  DatasetKind kind = DatasetKind::kOldenburg;
  double dataset_scale = 0.01;     ///< see DatasetOptions::scale
  size_t num_chargers = 1000;      ///< paper: >1,000 sites
  double max_derouting_m = 100000.0;  ///< D normalization (2R by default)
  uint64_t seed = 42;

  /// When non-empty, mmap-load the road network from this binary snapshot
  /// (graph/io.h) instead of synthesizing it; `kind` still shapes the
  /// trajectory workload. A snapshot of the kind's own network yields a
  /// bit-identical environment.
  std::string graph_snapshot;

  /// ALT landmarks to precompute for refinement-candidate ordering;
  /// 0 (default) skips the build and leaves Environment::landmarks null.
  size_t num_landmarks = 0;

  /// Exact-derouting cost-time bucket (see
  /// EcEstimatorOptions::exact_derouting_bucket_s); 0 = off.
  double exact_derouting_bucket_s = 0.0;

  /// Spatial index backend for the charger index. Every backend yields
  /// bit-identical Offering Tables; the choice is a performance knob.
  SpatialIndexKind index_kind = SpatialIndexKind::kQuadTree;

  /// Exact-derouting engine (CLI --derouting=ch|exact). kCh loads the
  /// snapshot's CH section when `graph_snapshot` carries one (zero-copy),
  /// contracts the network at build time otherwise; both produce estimates
  /// bit-identical to kExact.
  DeroutingBackend derouting_backend = DeroutingBackend::kExact;

  /// CH customization sweep threads (CLI --ch-threads): -1 (default) =
  /// hardware concurrency, 0 = the serial seed path, N = level-parallel
  /// pull sweep with N workers. All settings are bit-identical.
  int ch_threads = -1;

  /// Build the process-shared ChCustomizationCache for the CH backend
  /// (Environment::ch_cache). Off = every worker prices buckets privately
  /// (the pre-cache behavior; also what the parity tests compare against).
  bool ch_shared_cache = true;
};

/// Climate of each dataset's region (drives the weather Markov chain).
ClimateParams DefaultClimate(DatasetKind kind);

/// Latitude of each dataset's region (drives the solar model).
double DefaultLatitude(DatasetKind kind);

/// Builds a deterministic environment for (options).
Result<std::unique_ptr<Environment>> MakeEnvironment(
    const EnvironmentOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_ENVIRONMENT_H_
