#include "core/offering_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/simd_score.h"

namespace ecocharge {

std::vector<ChargerId> OfferingTable::ChargerIds() const {
  std::vector<ChargerId> ids;
  ids.reserve(entries.size());
  for (const OfferingEntry& e : entries) ids.push_back(e.charger_id);
  return ids;
}

std::string OfferingTable::ToString(
    const std::vector<EvCharger>& fleet) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "Offering Table @ t=" << generated_at / kSecondsPerHour << "h"
     << " segment=" << segment_index
     << (adapted_from_cache ? " (adapted from cache)" : "") << "\n";
  int rank = 1;
  for (const OfferingEntry& e : entries) {
    os << "  #" << rank++ << " charger b" << e.charger_id;
    if (e.charger_id < fleet.size()) {
      os << " [" << ChargerTypeName(fleet[e.charger_id].type) << ", "
         << fleet[e.charger_id].pv_capacity_kw << " kWp]";
    }
    os << " SC=(" << e.score.sc_min << ", " << e.score.sc_max << ")"
       << " L=" << e.ecs.level << " A=" << e.ecs.availability
       << " D=" << e.ecs.derouting << " ETA=" << e.eta_s / 60.0 << "min\n";
  }
  return os.str();
}

namespace {

/// Best-first total order: descending midpoint via the NaN-safe integer
/// key, ties by charger id. A plain `double` comparator would make NaN
/// "equivalent" to every value non-transitively — UB in std::sort — and
/// would leave the -0.0/+0.0 order unspecified.
bool EntryBetter(const OfferingEntry& a, const OfferingEntry& b) {
  const uint64_t ka = simd::DescendingKey(a.SortKey());
  const uint64_t kb = simd::DescendingKey(b.SortKey());
  if (ka != kb) return ka > kb;
  return a.charger_id < b.charger_id;
}

}  // namespace

void SortOfferingEntries(std::vector<OfferingEntry>& entries) {
  std::sort(entries.begin(), entries.end(), EntryBetter);
}

void SortOfferingEntriesTopK(std::vector<OfferingEntry>& entries, size_t k) {
  if (k >= entries.size()) {
    SortOfferingEntries(entries);
    return;
  }
  if (k == 0) {
    entries.clear();
    return;
  }
  std::nth_element(entries.begin(), entries.begin() + (k - 1), entries.end(),
                   EntryBetter);
  std::sort(entries.begin(), entries.begin() + k, EntryBetter);
  entries.resize(k);
}

}  // namespace ecocharge
