#include "core/offering_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ecocharge {

std::vector<ChargerId> OfferingTable::ChargerIds() const {
  std::vector<ChargerId> ids;
  ids.reserve(entries.size());
  for (const OfferingEntry& e : entries) ids.push_back(e.charger_id);
  return ids;
}

std::string OfferingTable::ToString(
    const std::vector<EvCharger>& fleet) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "Offering Table @ t=" << generated_at / kSecondsPerHour << "h"
     << " segment=" << segment_index
     << (adapted_from_cache ? " (adapted from cache)" : "") << "\n";
  int rank = 1;
  for (const OfferingEntry& e : entries) {
    os << "  #" << rank++ << " charger b" << e.charger_id;
    if (e.charger_id < fleet.size()) {
      os << " [" << ChargerTypeName(fleet[e.charger_id].type) << ", "
         << fleet[e.charger_id].pv_capacity_kw << " kWp]";
    }
    os << " SC=(" << e.score.sc_min << ", " << e.score.sc_max << ")"
       << " L=" << e.ecs.level << " A=" << e.ecs.availability
       << " D=" << e.ecs.derouting << " ETA=" << e.eta_s / 60.0 << "min\n";
  }
  return os.str();
}

void SortOfferingEntries(std::vector<OfferingEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const OfferingEntry& a, const OfferingEntry& b) {
              if (a.SortKey() != b.SortKey()) return a.SortKey() > b.SortKey();
              return a.charger_id < b.charger_id;
            });
}

}  // namespace ecocharge
