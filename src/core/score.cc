#include "core/score.h"

#include <cmath>

namespace ecocharge {

Status ScoreWeights::Validate() const {
  if (w_level < 0.0 || w_availability < 0.0 || w_derouting < 0.0) {
    return Status::InvalidArgument("weights must be non-negative");
  }
  double sum = w_level + w_availability + w_derouting;
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must sum to 1, got " +
                                   std::to_string(sum));
  }
  return Status::OK();
}

ScorePair ComputeScorePair(const EcIntervals& ecs, const ScoreWeights& w) {
  ScorePair sc;
  sc.sc_min = ecs.level.lo * w.w_level +
              ecs.availability.lo * w.w_availability +
              (1.0 - ecs.derouting.lo) * w.w_derouting;
  sc.sc_max = ecs.level.hi * w.w_level +
              ecs.availability.hi * w.w_availability +
              (1.0 - ecs.derouting.hi) * w.w_derouting;
  return sc;
}

double ComputeExactScore(double level, double availability, double derouting,
                         const ScoreWeights& w) {
  return level * w.w_level + availability * w.w_availability +
         (1.0 - derouting) * w.w_derouting;
}

Interval ComputeScoreEnclosure(const EcIntervals& ecs,
                               const ScoreWeights& w) {
  double lo = ecs.level.lo * w.w_level +
              ecs.availability.lo * w.w_availability +
              (1.0 - ecs.derouting.hi) * w.w_derouting;
  double hi = ecs.level.hi * w.w_level +
              ecs.availability.hi * w.w_availability +
              (1.0 - ecs.derouting.lo) * w.w_derouting;
  return Interval::FromUnordered(lo, hi);
}

}  // namespace ecocharge
