#ifndef ECOCHARGE_CORE_DYNAMIC_CACHE_H_
#define ECOCHARGE_CORE_DYNAMIC_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/simtime.h"
#include "core/cknn_ec.h"
#include "energy/charger.h"
#include "geo/point.h"

namespace ecocharge {

/// \brief Tuning of the solution-level Dynamic Caching (Section IV-C).
struct DynamicCacheOptions {
  /// Q: if the vehicle moved less than this since the cached solution was
  /// generated, the solution is adapted instead of regenerated.
  double q_distance_m = 5000.0;

  /// Temporal validity: L/A/D estimates go stale after this long
  /// regardless of movement (the paper's caching hypothesis).
  double ttl_s = 15.0 * kSecondsPerMinute;
};

/// \brief The portable contents of one client's Dynamic Cache: the
/// anchored solution plus its hit/miss counters.
///
/// Plain data so a serving runtime can move a vehicle's caching state
/// between shards on a cross-shard handoff: `DynamicCache::SwapState`
/// exchanges the whole state in O(1) (the candidate vector swaps its
/// storage), so the warm solution — and its grown capacity — travels with
/// the client instead of being regenerated on the destination shard.
struct DynamicCacheState {
  bool has_solution = false;
  Point anchor;
  SimTime stored_at = 0.0;
  std::vector<ScoredCandidate> candidates;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// \brief Bottom-up solution cache for EcoCharge.
///
/// Stores the scored candidate set (the solved sub-problems) behind the
/// last Offering Table. While the vehicle stays within Q of the cache
/// anchor and the entry is fresh, the solution is adapted: the cached L/A
/// estimates are kept as-is (they may be slightly stale — the accuracy
/// cost the paper's Q-opt experiment measures) and only the derouting
/// component is revised for the new position — O_1 adapted into O_2
/// without re-running the spatial filter or the forecast fetches.
class DynamicCache {
 public:
  explicit DynamicCache(const DynamicCacheOptions& options);

  /// The cached scored candidates if reusable at (position, now), else
  /// nullptr. Counts a hit or miss either way.
  const std::vector<ScoredCandidate>* TryReuse(const Point& position,
                                               SimTime now);

  /// Replaces the cached solution, anchored at (position, now). Copies
  /// into the existing cache storage, so steady-state stores reuse its
  /// capacity instead of allocating.
  void Store(const Point& position, SimTime now,
             const std::vector<ScoredCandidate>& candidates);

  /// Drops the cached solution (trip changed, settings changed). Keeps
  /// the candidate storage so a later Store() reuses its capacity.
  void Clear();

  /// Exchanges the entire cache contents (solution + counters) with
  /// `*state` in O(1). The fleet runtime checks a client's state out of a
  /// central store before ranking and back in afterwards, so the same
  /// warm solution follows the vehicle across shard handoffs.
  void SwapState(DynamicCacheState* state);

  uint64_t hits() const { return state_.hits; }
  uint64_t misses() const { return state_.misses; }
  double HitRate() const {
    uint64_t total = state_.hits + state_.misses;
    return total
               ? static_cast<double>(state_.hits) / static_cast<double>(total)
               : 0.0;
  }
  const DynamicCacheOptions& options() const { return options_; }

 private:
  DynamicCacheOptions options_;
  DynamicCacheState state_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_DYNAMIC_CACHE_H_
