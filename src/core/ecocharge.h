#ifndef ECOCHARGE_CORE_ECOCHARGE_H_
#define ECOCHARGE_CORE_ECOCHARGE_H_

#include <memory>
#include <vector>

#include "core/cknn_ec.h"
#include "core/dynamic_cache.h"
#include "core/ranker.h"

namespace ecocharge {

/// \brief The user-facing configuration of EcoCharge (Algorithm 1).
struct EcoChargeOptions {
  double radius_m = 50000.0;       ///< R: search radius (paper default 50 km)
  double q_distance_m = 5000.0;    ///< Q: cache-reuse distance (default 5 km)
  double cache_ttl_s = 15.0 * kSecondsPerMinute;
  size_t refine_limit = 8;         ///< exact-derouting refinements per query
  bool refine_exact_derouting = true;

  /// Eq. 6 intersection on/off (see CknnEcOptions::use_intersection).
  bool use_intersection = true;

  /// If true, the cache-adaptation path revises the derouting component
  /// for the new position before re-ranking. The paper skips the
  /// recalculation entirely while within Q (the accuracy/time trade-off
  /// its Q-opt experiment sweeps), so the default is false.
  bool adapt_revises_derouting = false;

  /// Batched exact refinement (one multi-target sweep per query instead of
  /// `refine_limit` point-to-point searches); results are bit-identical
  /// either way. Off is the `--no-batch-derouting` escape hatch.
  bool batch_derouting = true;

  /// Optional ALT landmark bounds for refinement-candidate ordering (see
  /// CknnEcOptions::landmarks; borrowed, may be null).
  const LandmarkIndex* landmarks = nullptr;
  bool landmark_refine_order = true;

  /// Optional contraction hierarchy for refinement-candidate ordering (see
  /// CknnEcOptions::ch; borrowed, may be null). Preferred over `landmarks`
  /// when both are set.
  const ChIndex* ch = nullptr;

  /// Vectorized filter/score hot path (see CknnEcOptions::use_simd);
  /// Offering Tables are bit-identical with it on or off. Off is the
  /// `--no-simd` escape hatch / scalar parity oracle.
  bool use_simd = true;

  /// Per-client Dynamic Caching (Section IV-C) on/off. The fleet
  /// runtime's corridor cache ranks canonical anchor states with this
  /// off, so a stored corridor table is a pure function of (corridor key,
  /// world epoch) — independent of which vehicle computed it first.
  bool use_dynamic_cache = true;
};

/// \brief The EcoCharge renewable-hoarding algorithm.
///
/// Implements Algorithm 1 on top of the CkNN-EC processor:
///  1. the trip is segmented upstream (workload.h);
///  2. per vehicle state, the filtering phase collects chargers within R
///     and scores interval ECs, the refinement phase intersects the
///     SC_min/SC_max rankings (eq. 6) and exact-refines the leaders;
///  3. Dynamic Caching adapts the previous Offering Table while the
///     vehicle has moved less than Q and the estimates are fresh — the
///     cached path skips the spatial filter and, via the per-call
///     refinement flag, the exact derouting refinement.
///
/// The ranker works against any SpatialIndex backend and spends no heap
/// allocations per query once the caller's QueryContext is warm — the
/// exact-derouting sweeps included, whose frontier and batch staging
/// persist in the estimator's search workspace and the context.
class EcoChargeRanker : public Ranker {
 public:
  EcoChargeRanker(EcEstimator* estimator, const SpatialIndex* charger_index,
                  const ScoreWeights& weights,
                  const EcoChargeOptions& options);

  std::string_view name() const override { return "EcoCharge"; }
  void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                OfferingTable* out) override;
  void Reset() override;

  const DynamicCache& cache() const { return cache_; }
  const EcoChargeOptions& options() const { return options_; }

  /// Exchanges the Dynamic Cache contents with `*state` in O(1) (see
  /// DynamicCacheState). The fleet runtime swaps a client's centrally
  /// stored state in before ranking and back out after, so one shared
  /// ranker serves every client while each vehicle keeps its own cache.
  void SwapCacheState(DynamicCacheState* state) { cache_.SwapState(state); }

  /// Installs phase timers/counters on the underlying CkNN-EC processor
  /// (both the full-regeneration and the cached adaptation path record
  /// through the same handles).
  void set_metrics(const PipelineMetrics& metrics) {
    processor_.set_metrics(metrics);
  }

  /// Resolves the canonical `pipeline.*` names on `registry` and installs
  /// them; null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry) {
    processor_.AttachMetrics(registry);
  }

 private:
  EcEstimator* estimator_;
  ScoreWeights weights_;
  EcoChargeOptions options_;
  CknnEcProcessor processor_;
  DynamicCache cache_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_ECOCHARGE_H_
