#include "core/ec_estimator.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

EcEstimator::EcEstimator(std::shared_ptr<const RoadNetwork> network,
                         const std::vector<EvCharger>* fleet,
                         SolarEnergyService* energy,
                         const AvailabilityService* availability,
                         const CongestionModel* congestion,
                         const EcEstimatorOptions& options)
    : network_(std::move(network)),
      fleet_(fleet),
      energy_(energy),
      availability_(availability),
      options_(options),
      derouting_(network_, congestion, /*detour_factor=*/1.3,
                 options.exact_derouting_bucket_s),
      owned_eis_(std::make_unique<InformationServer>(energy, availability,
                                                     congestion)),
      eis_(owned_eis_.get()) {
  derouting_.set_ch(options.ch, options.ch_cache, options.ch_threads);
  PickBestSite();
}

EcEstimator::EcEstimator(std::shared_ptr<const RoadNetwork> network,
                         const std::vector<EvCharger>* fleet,
                         SolarEnergyService* energy,
                         const AvailabilityService* availability,
                         const CongestionModel* congestion,
                         const EcEstimatorOptions& options,
                         InformationServer* shared_eis)
    : network_(std::move(network)),
      fleet_(fleet),
      energy_(energy),
      availability_(availability),
      options_(options),
      derouting_(network_, congestion, /*detour_factor=*/1.3,
                 options.exact_derouting_bucket_s),
      eis_(shared_eis) {
  derouting_.set_ch(options.ch, options.ch_cache, options.ch_threads);
  PickBestSite();
}

void EcEstimator::PickBestSite() {
  double best = -1.0;
  for (size_t i = 0; i < fleet_->size(); ++i) {
    const EvCharger& c = (*fleet_)[i];
    double deliverable = std::min(c.RateKw(), c.pv_capacity_kw);
    if (deliverable > best) {
      best = deliverable;
      best_site_index_ = i;
    }
  }
}

double EcEstimator::MaxFleetEnergyKwh(SimTime t, double window_s) {
  // Quantize to the EIS forecast bucket so the value is pure in its key.
  const double bucket_s = 15.0 * kSecondsPerMinute;
  uint64_t bucket = static_cast<uint64_t>(std::max(0.0, t) / bucket_s);
  uint64_t key = bucket * 1000003ULL +
                 static_cast<uint64_t>(window_s / kSecondsPerMinute);
  auto it = max_energy_cache_.find(key);
  if (it != max_energy_cache_.end()) return it->second;
  if (fleet_->empty()) return 0.0;
  double value = energy_->ActualEnergyKwh(
      (*fleet_)[best_site_index_], static_cast<double>(bucket) * bucket_s,
      window_s);
  max_energy_cache_[key] = value;
  return value;
}

double EcEstimator::NormalizeEnergy(double kwh, double window_s, SimTime t) {
  // Eq. 1: the environment's maximum charging level at this time window.
  double denom = MaxFleetEnergyKwh(t, window_s);
  if (denom <= 1e-9) return 0.0;  // night: nothing produces
  return std::clamp(kwh / denom, 0.0, 1.0);
}

double EcEstimator::NormalizeDerouting(double extra_m, double norm_m) const {
  if (!std::isfinite(extra_m)) return 1.0;
  double denom = norm_m > 0.0 ? norm_m : options_.max_derouting_m;
  return std::clamp(extra_m / denom, 0.0, 1.0);
}

DeroutingQuery EcEstimator::MakeQuery(const VehicleState& state) const {
  DeroutingQuery q;
  q.vehicle_position = state.position;
  q.vehicle_node = state.node;
  q.return_point_a = state.return_point_a;
  q.return_point_b = state.return_point_b;
  q.return_node_a = state.return_node_a;
  q.return_node_b = state.return_node_b;
  q.now = state.time;
  return q;
}

EcIntervals EcEstimator::EstimateIntervals(const VehicleState& state,
                                           const EvCharger& charger,
                                           double derouting_norm_m) {
  DeroutingQuery q = MakeQuery(state);
  EisFetch traffic_fetch = EisFetch::kFresh;
  CongestionModel::Band band = eis_->GetTraffic(
      RoadClass::kArterial, state.time, state.time, &traffic_fetch);
  DeroutingEstimate der = derouting_.Estimate(q, charger, band);
  SimTime eta_time = state.time + der.eta_s;

  EisFetch energy_fetch = EisFetch::kFresh;
  EnergyForecast energy =
      eis_->GetEnergyForecast(charger, state.time, eta_time,
                              state.charge_window_s, &energy_fetch);
  EisFetch avail_fetch = EisFetch::kFresh;
  AvailabilityForecast avail =
      eis_->GetAvailability(charger, state.time, eta_time, &avail_fetch);

  if (level_estimates_) level_estimates_->Add();
  if (availability_estimates_) availability_estimates_->Add();
  if (derouting_estimates_) derouting_estimates_->Add();

  EcIntervals ecs;
  ecs.level = Interval::FromUnordered(
      NormalizeEnergy(energy.min_kwh, state.charge_window_s, eta_time),
      NormalizeEnergy(energy.max_kwh, state.charge_window_s, eta_time));
  ecs.availability = Interval::FromUnordered(avail.min, avail.max);
  ecs.derouting = Interval::FromUnordered(
      NormalizeDerouting(der.extra_distance_min_m, derouting_norm_m),
      NormalizeDerouting(der.extra_distance_max_m, derouting_norm_m));
  ecs.eta_s = der.eta_s;
  ecs.degraded = traffic_fetch != EisFetch::kFresh ||
                 energy_fetch != EisFetch::kFresh ||
                 avail_fetch != EisFetch::kFresh;
  return ecs;
}

void EcEstimator::ReviseDerouting(const VehicleState& state,
                                  const EvCharger& charger, EcIntervals* ecs,
                                  double derouting_norm_m) {
  DeroutingQuery q = MakeQuery(state);
  EisFetch traffic_fetch = EisFetch::kFresh;
  CongestionModel::Band band = eis_->GetTraffic(
      RoadClass::kArterial, state.time, state.time, &traffic_fetch);
  DeroutingEstimate der = derouting_.Estimate(q, charger, band);
  if (derouting_estimates_) derouting_estimates_->Add();
  ecs->derouting = Interval::FromUnordered(
      NormalizeDerouting(der.extra_distance_min_m, derouting_norm_m),
      NormalizeDerouting(der.extra_distance_max_m, derouting_norm_m));
  ecs->eta_s = der.eta_s;
  // Adaptation keeps the cached L/A estimates: a degraded flag can only be
  // added to, never cleared by, the refreshed derouting component.
  ecs->degraded = ecs->degraded || traffic_fetch != EisFetch::kFresh;
}

EcIntervals EcEstimator::EstimateWithExactDerouting(const VehicleState& state,
                                                    const EvCharger& charger,
                                                    double derouting_norm_m) {
  EcIntervals ecs = EstimateIntervals(state, charger, derouting_norm_m);
  DeroutingEstimate exact = derouting_.Exact(MakeQuery(state), charger);
  if (exact_derouting_estimates_) exact_derouting_estimates_->Add();
  ApplyExactDerouting(exact, derouting_norm_m, &ecs);
  return ecs;
}

BatchSweepStats EcEstimator::ExactDeroutingBatch(
    const VehicleState& state, std::span<const ChargerRef> chargers,
    DeroutingBatchScratch* scratch) {
  BatchSweepStats stats = derouting_.ExactBatch(
      MakeQuery(state), chargers, scratch, &scratch->estimates);
  if (exact_derouting_estimates_) {
    exact_derouting_estimates_->Add(chargers.size());
  }
  return stats;
}

void EcEstimator::ApplyExactDerouting(const DeroutingEstimate& exact,
                                      double derouting_norm_m,
                                      EcIntervals* ecs) const {
  double d = NormalizeDerouting(exact.extra_distance_min_m, derouting_norm_m);
  ecs->derouting = Interval::Exact(d);
  ecs->eta_s = exact.eta_s;
}

EcTruth EcEstimator::Truth(const VehicleState& state,
                           const EvCharger& charger) {
  DeroutingEstimate der = derouting_.Exact(MakeQuery(state), charger);
  EcTruth truth;
  truth.derouting = NormalizeDerouting(der.extra_distance_min_m);
  truth.eta_s = der.eta_s;
  SimTime arrival = state.time + (std::isfinite(der.eta_s) ? der.eta_s : 0.0);
  double kwh =
      energy_->ActualEnergyKwh(charger, arrival, state.charge_window_s);
  truth.level = NormalizeEnergy(kwh, state.charge_window_s, arrival);
  truth.availability = availability_->ActualAvailability(charger, arrival);
  return truth;
}

EcTruth EcEstimator::ReferenceComponents(const VehicleState& state,
                                         const EvCharger& charger) {
  DeroutingEstimate der = derouting_.Exact(MakeQuery(state), charger);
  EcTruth ref;
  ref.derouting = NormalizeDerouting(der.extra_distance_min_m);
  ref.eta_s = der.eta_s;
  SimTime arrival = state.time + (std::isfinite(der.eta_s) ? der.eta_s : 0.0);
  EisFetch energy_fetch = EisFetch::kFresh;
  EnergyForecast energy =
      eis_->GetEnergyForecast(charger, state.time, arrival,
                              state.charge_window_s, &energy_fetch);
  ref.level =
      (NormalizeEnergy(energy.min_kwh, state.charge_window_s, arrival) +
       NormalizeEnergy(energy.max_kwh, state.charge_window_s, arrival)) /
      2.0;
  EisFetch avail_fetch = EisFetch::kFresh;
  AvailabilityForecast avail =
      eis_->GetAvailability(charger, state.time, arrival, &avail_fetch);
  ref.availability = (avail.min + avail.max) / 2.0;
  ref.degraded =
      energy_fetch != EisFetch::kFresh || avail_fetch != EisFetch::kFresh;
  return ref;
}

void EcEstimator::AttachMetrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    level_estimates_ = nullptr;
    availability_estimates_ = nullptr;
    derouting_estimates_ = nullptr;
    exact_derouting_estimates_ = nullptr;
    derouting_.AttachChMetrics(nullptr);
    if (owned_eis_) owned_eis_->AttachMetrics(nullptr);
    return;
  }
  level_estimates_ =
      registry->GetCounter("estimator.estimates.level", "estimates");
  availability_estimates_ =
      registry->GetCounter("estimator.estimates.availability", "estimates");
  derouting_estimates_ =
      registry->GetCounter("estimator.estimates.derouting", "estimates");
  exact_derouting_estimates_ = registry->GetCounter(
      "estimator.estimates.exact_derouting", "estimates");
  derouting_.AttachChMetrics(registry);
  if (owned_eis_) owned_eis_->AttachMetrics(registry);
}

double EcEstimator::ReferenceScore(const VehicleState& state,
                                   const EvCharger& charger,
                                   const ScoreWeights& weights) {
  EcTruth r = ReferenceComponents(state, charger);
  return ComputeExactScore(r.level, r.availability, r.derouting, weights);
}

double EcEstimator::TrueScore(const VehicleState& state,
                              const EvCharger& charger,
                              const ScoreWeights& weights) {
  EcTruth t = Truth(state, charger);
  return ComputeExactScore(t.level, t.availability, t.derouting, weights);
}

}  // namespace ecocharge
