#ifndef ECOCHARGE_CORE_VEHICLE_STATE_H_
#define ECOCHARGE_CORE_VEHICLE_STATE_H_

#include "common/simtime.h"
#include "graph/road_network.h"

namespace ecocharge {

/// \brief Everything a ranker needs to know about one vehicle at one
/// moment: where it is on its scheduled trip and how long it can charge.
struct VehicleState {
  Point position;                      ///< current location of m
  NodeId node = kInvalidNode;          ///< snapped network node
  SimTime time = 0.0;                  ///< current simulation time
  Point return_point_a;                ///< end of current segment p_i
  Point return_point_b;                ///< end of next segment p_{i+1}
  NodeId return_node_a = kInvalidNode;
  NodeId return_node_b = kInvalidNode;
  double charge_window_s = kSecondsPerHour;  ///< idle time available
  size_t segment_index = 0;            ///< which p_i of P this state is on
  uint64_t trip_id = 0;                ///< owning trip, for grouping
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_VEHICLE_STATE_H_
