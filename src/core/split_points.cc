#include "core/split_points.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ecocharge {

std::vector<SplitInterval> ContinuousNearestNeighbor(
    const Point& a, const Point& b, const std::vector<Point>& sites) {
  std::vector<SplitInterval> result;
  if (sites.empty()) return result;

  // dist^2 to site i at parameter t: |a - s_i|^2 + 2 t (b-a).(a - s_i)
  //                                  + t^2 |b-a|^2.
  // The shared quadratic term cancels in comparisons, leaving lines
  // f_i(t) = c_i + m_i t.
  size_t n = sites.size();
  std::vector<double> c(n), m(n);
  Point ab = b - a;
  for (size_t i = 0; i < n; ++i) {
    Point as = a - sites[i];
    c[i] = as.NormSquared();
    m[i] = 2.0 * ab.Dot(as);
  }

  auto value = [&](size_t i, double t) { return c[i] + m[i] * t; };

  // Current winner at t = 0: smallest value, ties to smaller slope (the
  // one that stays ahead), then smaller index for determinism.
  size_t current = 0;
  for (size_t i = 1; i < n; ++i) {
    double d = value(i, 0.0) - value(current, 0.0);
    if (d < 0.0 || (d == 0.0 && (m[i] < m[current] ||
                                 (m[i] == m[current] && i < current)))) {
      current = i;
    }
  }

  double t = 0.0;
  const double kEps = 1e-12;
  while (t < 1.0) {
    // Earliest crossing after t where some site beats the current one.
    double best_cross = std::numeric_limits<double>::infinity();
    size_t best_site = current;
    for (size_t i = 0; i < n; ++i) {
      if (i == current) continue;
      double dm = m[i] - m[current];
      if (dm >= 0.0) continue;  // never overtakes
      // f_i(t*) == f_cur(t*)  =>  t* = (c_i - c_cur) / (m_cur - m_i).
      double cross = (c[i] - c[current]) / (-dm);
      if (cross <= t + kEps || cross >= 1.0) continue;
      if (cross < best_cross ||
          (cross == best_cross && m[i] < m[best_site])) {
        best_cross = cross;
        best_site = i;
      }
    }
    if (!std::isfinite(best_cross)) {
      result.push_back({t, 1.0, static_cast<uint32_t>(current)});
      break;
    }
    result.push_back({t, best_cross, static_cast<uint32_t>(current)});
    t = best_cross;
    current = best_site;
  }
  return result;
}

std::vector<KnnSplitInterval> SampledContinuousKnn(
    const Point& a, const Point& b, const std::vector<Point>& sites,
    size_t k, size_t samples) {
  std::vector<KnnSplitInterval> result;
  if (sites.empty() || k == 0 || samples < 2) return result;
  k = std::min(k, sites.size());

  auto knn_at = [&](double t) {
    Point p = a + (b - a) * t;
    std::vector<uint32_t> ids(sites.size());
    for (uint32_t i = 0; i < sites.size(); ++i) ids[i] = i;
    std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                      [&](uint32_t x, uint32_t y) {
                        double dx = DistanceSquared(sites[x], p);
                        double dy = DistanceSquared(sites[y], p);
                        if (dx != dy) return dx < dy;
                        return x < y;
                      });
    ids.resize(k);
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  double step = 1.0 / static_cast<double>(samples - 1);
  KnnSplitInterval open;
  open.start_t = 0.0;
  open.sites = knn_at(0.0);
  for (size_t s = 1; s < samples; ++s) {
    double t = static_cast<double>(s) * step;
    std::vector<uint32_t> now = knn_at(t);
    if (now != open.sites) {
      open.end_t = t;
      result.push_back(open);
      open.start_t = t;
      open.sites = std::move(now);
    }
  }
  open.end_t = 1.0;
  result.push_back(open);
  return result;
}

}  // namespace ecocharge
