#ifndef ECOCHARGE_CORE_INTERVAL_H_
#define ECOCHARGE_CORE_INTERVAL_H_

#include <algorithm>
#include <cassert>
#include <ostream>

namespace ecocharge {

/// \brief A closed interval [lo, hi] — the representation of every
/// Estimated Component (EC): a quantity known only up to lower/upper
/// estimation values.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr Interval() = default;
  constexpr Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
    assert(lo_in <= hi_in);
  }

  /// An interval collapsed to one exact value.
  static constexpr Interval Exact(double v) { return Interval{v, v}; }

  /// Builds from possibly-unordered endpoints.
  static Interval FromUnordered(double a, double b) {
    return a <= b ? Interval{a, b} : Interval{b, a};
  }

  constexpr double Mid() const { return (lo + hi) / 2.0; }
  constexpr double Width() const { return hi - lo; }
  constexpr bool IsExact() const { return lo == hi; }

  constexpr bool Contains(double v) const { return v >= lo && v <= hi; }
  constexpr bool Intersects(const Interval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }

  /// Interval arithmetic (exact for these monotone operations).
  constexpr Interval operator+(const Interval& o) const {
    return Interval{lo + o.lo, hi + o.hi};
  }
  constexpr Interval operator-(const Interval& o) const {
    return Interval{lo - o.hi, hi - o.lo};
  }
  Interval operator*(double s) const {
    return s >= 0.0 ? Interval{lo * s, hi * s} : Interval{hi * s, lo * s};
  }

  /// Both endpoints clamped to [min_v, max_v].
  Interval Clamped(double min_v, double max_v) const {
    return Interval{std::clamp(lo, min_v, max_v),
                    std::clamp(hi, min_v, max_v)};
  }

  /// Smallest interval covering both (hull).
  Interval Union(const Interval& o) const {
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// 1 - x, mapped endpoint-wise (used for the derouting term (1 - D)).
  constexpr Interval Complement() const {
    return Interval{1.0 - hi, 1.0 - lo};
  }

  constexpr bool operator==(const Interval& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

/// Total order on possibly-overlapping intervals, used only for
/// deterministic sorting: by midpoint, then lo.
inline bool IntervalMidLess(const Interval& a, const Interval& b) {
  if (a.Mid() != b.Mid()) return a.Mid() < b.Mid();
  return a.lo < b.lo;
}

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << ", " << iv.hi << "]";
}

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_INTERVAL_H_
