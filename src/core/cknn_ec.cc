#include "core/cknn_ec.h"

#include <algorithm>
#include <span>

#include "ch/ch_query.h"
#include "graph/landmarks.h"

namespace ecocharge {

namespace {

/// Transposes the pool's score pairs and ids into SoA lanes — the gather
/// step for rankings over pools that arrive AoS (scored candidates,
/// cache-adapted pools). Sizes sc_min/sc_max/ids to the pool.
void GatherScoreLanes(const std::vector<ScoredCandidate>& candidates,
                      simd::ScoreLanes* lanes) {
  const size_t n = candidates.size();
  lanes->sc_min.resize(n);
  lanes->sc_max.resize(n);
  lanes->ids.resize(n);
  for (size_t i = 0; i < n; ++i) {
    lanes->sc_min[i] = candidates[i].score.sc_min;
    lanes->sc_max[i] = candidates[i].score.sc_max;
    lanes->ids[i] = candidates[i].charger_id;
  }
}

/// Midpoint lane + its descending total-order keys from the sc lanes.
void BuildMidpointKeys(bool use_simd, simd::ScoreLanes* lanes) {
  const size_t n = lanes->sc_min.size();
  lanes->mid.resize(n);
  lanes->keys_mid.resize(n);
  if (use_simd) {
    simd::Midpoints(lanes->sc_min.data(), lanes->sc_max.data(), n,
                    lanes->mid.data());
    simd::DescendingKeys(lanes->mid.data(), n, lanes->keys_mid.data());
  } else {
    simd::MidpointsScalar(lanes->sc_min.data(), lanes->sc_max.data(), n,
                          lanes->mid.data());
    simd::DescendingKeysScalar(lanes->mid.data(), n, lanes->keys_mid.data());
  }
}

void Iota(std::vector<uint32_t>* order, size_t n) {
  order->resize(n);
  for (uint32_t i = 0; i < n; ++i) (*order)[i] = i;
}

}  // namespace

PipelineMetrics PipelineMetrics::FromRegistry(obs::MetricsRegistry* registry) {
  PipelineMetrics m;
  if (!registry) return m;
  m.filter_ns = registry->GetHistogram("pipeline.filter_ns", "ns");
  m.score_ns = registry->GetHistogram("pipeline.score_ns", "ns");
  m.refine_ns = registry->GetHistogram("pipeline.refine_ns", "ns");
  m.candidates_scored =
      registry->GetCounter("pipeline.candidates_scored", "candidates");
  m.candidates_pruned =
      registry->GetCounter("pipeline.candidates_pruned", "candidates");
  m.exact_refinements =
      registry->GetCounter("pipeline.exact_refinements", "refinements");
  m.batch_derouting_ns =
      registry->GetHistogram("pipeline.batch_derouting_ns", "ns");
  m.batch_targets = registry->GetCounter("pipeline.batch_targets", "chargers");
  m.warm_start_hits =
      registry->GetCounter("pipeline.warm_start_hits", "sweeps");
  m.simd_batches = registry->GetCounter("pipeline.simd.batches", "batches");
  m.simd_lanes = registry->GetCounter("pipeline.simd.lanes", "candidates");
  return m;
}

void IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k,
    QueryContext* ctx, std::vector<ScoredCandidate>* out, bool use_simd) {
  out->clear();
  if (candidates.empty() || k == 0) return;

  // Gather once into SoA lanes, convert both score lanes to total-order
  // integer keys (NaN ranks last, deterministically), and from then on the
  // rankings are pure index/key work: no double compares, no branches on
  // unordered values.
  const size_t n = candidates.size();
  simd::ScoreLanes& lanes = ctx->lanes;
  GatherScoreLanes(candidates, &lanes);
  lanes.keys_min.resize(n);
  lanes.keys_max.resize(n);
  if (use_simd) {
    simd::DescendingKeys(lanes.sc_min.data(), n, lanes.keys_min.data());
    simd::DescendingKeys(lanes.sc_max.data(), n, lanes.keys_max.data());
  } else {
    simd::DescendingKeysScalar(lanes.sc_min.data(), n, lanes.keys_min.data());
    simd::DescendingKeysScalar(lanes.sc_max.data(), n, lanes.keys_max.data());
  }

  // Deepen: take the top-d of both rankings, intersect, and grow d until
  // the intersection holds k chargers or everything has been considered.
  // Each round partial-selects just the top-d it needs (the selects are
  // re-run from a fresh iota because selection permutes the index array;
  // the doubling schedule keeps the total select work O(n log n) worst
  // case, same as one full sort). Membership in the top-d of by_min is
  // tracked by stamping member_mark with a per-iteration epoch — no hash
  // set, no clearing.
  std::vector<uint32_t>& by_min = ctx->order_min;
  std::vector<uint32_t>& by_max = ctx->order_max;
  if (ctx->member_mark.size() < n) ctx->member_mark.resize(n, 0);
  size_t depth = std::min(k, n);
  std::vector<uint32_t>& common = ctx->common;
  while (true) {
    Iota(&by_min, n);
    Iota(&by_max, n);
    simd::PartialSelectDescending(lanes.keys_min.data(), lanes.ids.data(),
                                  by_min.data(), n, depth);
    simd::PartialSelectDescending(lanes.keys_max.data(), lanes.ids.data(),
                                  by_max.data(), n, depth);
    uint64_t epoch = ++ctx->mark_epoch;
    for (size_t i = 0; i < depth; ++i) ctx->member_mark[by_min[i]] = epoch;
    common.clear();
    for (size_t i = 0; i < depth; ++i) {
      if (ctx->member_mark[by_max[i]] == epoch) common.push_back(by_max[i]);
    }
    if (common.size() >= k || depth == n) break;
    depth = std::min(n, depth * 2);
  }

  // Order the common chargers by score midpoint (the final sort of eq. 6)
  // and keep k — a partial select again, since only the kept prefix's
  // order is observable.
  BuildMidpointKeys(use_simd, &lanes);
  const size_t keep = std::min(k, common.size());
  simd::PartialSelectDescending(lanes.keys_mid.data(), lanes.ids.data(),
                                common.data(), common.size(), keep);
  common.resize(keep);
  out->reserve(common.size());
  for (uint32_t idx : common) out->push_back(candidates[idx]);
}

std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k) {
  QueryContext ctx;
  std::vector<ScoredCandidate> out;
  IterativeDeepeningIntersection(candidates, k, &ctx, &out);
  return out;
}

CknnEcProcessor::CknnEcProcessor(EcEstimator* estimator,
                                 const SpatialIndex* charger_index,
                                 const CknnEcOptions& options)
    : estimator_(estimator),
      charger_index_(charger_index),
      options_(options) {
  if (options_.ch != nullptr) {
    ch_query_ = std::make_unique<ChQuery>(*options_.ch);
  }
}

CknnEcProcessor::~CknnEcProcessor() = default;

const std::vector<ChargerId>& CknnEcProcessor::FilterCandidates(
    const Point& position, QueryContext* ctx) const {
  obs::ScopedTimer timer(metrics_.filter_ns);
  charger_index_->RangeSearchInto(position, options_.radius_m, &ctx->spatial,
                                  &ctx->neighbors);
  // SoA gather + radius mask. Every backend already guarantees
  // distance <= R, so the mask is a revalidation of that contract — but
  // running it on both paths keeps the scalar oracle and the SIMD kernel
  // byte-for-byte interchangeable, and it is what prunes when a caller
  // feeds a wider neighbor set (kNN results) through the same lanes.
  simd::ScoreLanes& lanes = ctx->lanes;
  SplitNeighborLanes(ctx->neighbors, &lanes.ids, &lanes.distance);
  const size_t n = lanes.ids.size();
  lanes.keep.resize(n);
  if (options_.use_simd) {
    simd::LeMask(lanes.distance.data(), options_.radius_m, n,
                 lanes.keep.data());
    if (metrics_.simd_batches) metrics_.simd_batches->Add();
    if (metrics_.simd_lanes && n > 0) metrics_.simd_lanes->Add(n);
  } else {
    simd::LeMaskScalar(lanes.distance.data(), options_.radius_m, n,
                       lanes.keep.data());
  }
  ctx->candidates.clear();
  ctx->candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (lanes.keep[i]) ctx->candidates.push_back(lanes.ids[i]);
  }
  return ctx->candidates;
}

std::vector<ChargerId> CknnEcProcessor::FilterCandidates(
    const Point& position) const {
  QueryContext ctx;
  FilterCandidates(position, &ctx);
  return std::move(ctx.candidates);
}

const std::vector<ScoredCandidate>& CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights, QueryContext* ctx) {
  obs::ScopedTimer timer(metrics_.score_ns);
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<ScoredCandidate>& scored = ctx->scored;
  scored.clear();
  scored.reserve(candidate_ids.size());
  if (options_.use_simd) {
    // Gather: the per-candidate interval estimation stays scalar (it is
    // EIS-fetch-bound and branchy), but its six endpoints transpose into
    // the SoA lanes so the eq. 4–5 arithmetic runs as one vector batch.
    simd::ScoreLanes& lanes = ctx->lanes;
    lanes.Clear();
    for (ChargerId id : candidate_ids) {
      if (id >= fleet.size()) continue;
      ScoredCandidate c;
      c.charger_id = id;
      c.ecs = estimator_->EstimateIntervals(state, fleet[id],
                                            options_.derouting_norm_m);
      lanes.level_lo.push_back(c.ecs.level.lo);
      lanes.level_hi.push_back(c.ecs.level.hi);
      lanes.avail_lo.push_back(c.ecs.availability.lo);
      lanes.avail_hi.push_back(c.ecs.availability.hi);
      lanes.der_lo.push_back(c.ecs.derouting.lo);
      lanes.der_hi.push_back(c.ecs.derouting.hi);
      lanes.ids.push_back(id);
      scored.push_back(c);
    }
    const size_t n = scored.size();
    lanes.sc_min.resize(n);
    lanes.sc_max.resize(n);
    simd::ScoreIntervals(lanes.level_lo.data(), lanes.level_hi.data(),
                         lanes.avail_lo.data(), lanes.avail_hi.data(),
                         lanes.der_lo.data(), lanes.der_hi.data(), n, weights,
                         lanes.sc_min.data(), lanes.sc_max.data());
    for (size_t i = 0; i < n; ++i) {
      scored[i].score.sc_min = lanes.sc_min[i];
      scored[i].score.sc_max = lanes.sc_max[i];
    }
    if (metrics_.simd_batches) metrics_.simd_batches->Add();
    if (metrics_.simd_lanes && n > 0) metrics_.simd_lanes->Add(n);
  } else {
    // Scalar oracle: the per-candidate AoS path, byte-for-byte the scores
    // the SIMD batch above must reproduce.
    for (ChargerId id : candidate_ids) {
      if (id >= fleet.size()) continue;
      ScoredCandidate c;
      c.charger_id = id;
      c.ecs = estimator_->EstimateIntervals(state, fleet[id],
                                            options_.derouting_norm_m);
      c.score = ComputeScorePair(c.ecs, weights);
      scored.push_back(c);
    }
  }
  if (metrics_.candidates_scored && !scored.empty()) {
    metrics_.candidates_scored->Add(scored.size());
  }
  return scored;
}

std::vector<ScoredCandidate> CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights) {
  QueryContext ctx;
  ScoreCandidates(state, candidate_ids, weights, &ctx);
  return std::move(ctx.scored);
}

void CknnEcProcessor::RefineAndRank(const VehicleState& state,
                                    const std::vector<ScoredCandidate>* scored,
                                    size_t k, const ScoreWeights& weights,
                                    bool refine_exact_derouting,
                                    QueryContext* ctx,
                                    std::vector<OfferingEntry>* out) {
  obs::ScopedTimer timer(metrics_.refine_ns);
  // Intersection over a pool slightly deeper than k, so the exact-derouting
  // refinement has alternatives to promote.
  size_t pool =
      refine_exact_derouting ? std::max(k, options_.refine_limit) : k;
  std::vector<ScoredCandidate>& selected = ctx->selected;
  if (options_.use_intersection) {
    IterativeDeepeningIntersection(*scored, pool, ctx, &selected,
                                   options_.use_simd);
  } else {
    // Ablation path: plain top-`pool` by score midpoint, via the same key
    // lanes and partial select as the intersection. Rank the indices so
    // `*scored` (often a live cache entry) stays untouched.
    simd::ScoreLanes& lanes = ctx->lanes;
    GatherScoreLanes(*scored, &lanes);
    BuildMidpointKeys(options_.use_simd, &lanes);
    const size_t n = scored->size();
    std::vector<uint32_t>& order = ctx->order_min;
    Iota(&order, n);
    const size_t keep = std::min(pool, n);
    simd::PartialSelectDescending(lanes.keys_mid.data(), lanes.ids.data(),
                                  order.data(), n, keep);
    order.resize(keep);
    selected.clear();
    selected.reserve(order.size());
    for (uint32_t idx : order) selected.push_back((*scored)[idx]);
  }

  if (metrics_.candidates_pruned && scored->size() > selected.size()) {
    metrics_.candidates_pruned->Add(scored->size() - selected.size());
  }

  const std::vector<EvCharger>& fleet = estimator_->fleet();
  const size_t refine_count =
      refine_exact_derouting ? std::min(options_.refine_limit, selected.size())
                             : 0;
  if (refine_count > 0 && (options_.ch || options_.landmarks) &&
      options_.landmark_refine_order) {
    OrderByDeroutingBound(state, ctx);
  }

  if (refine_count > 0 && options_.batch_derouting) {
    // Batched refinement: one forward sweep covers every outbound leg, one
    // (possibly warm) backward extension every return leg. The EIS fetch
    // sequence stays identical to the per-candidate path because the batch
    // touches no EIS and the EstimateIntervals loop below runs in the same
    // candidate order.
    DeroutingBatchScratch& scratch = ctx->derouting;
    scratch.chargers.clear();
    for (size_t i = 0; i < refine_count; ++i) {
      scratch.chargers.push_back(&fleet[selected[i].charger_id]);
    }
    BatchSweepStats stats;
    {
      obs::ScopedTimer batch_timer(metrics_.batch_derouting_ns);
      stats = estimator_->ExactDeroutingBatch(
          state, std::span<const ChargerRef>(scratch.chargers), &scratch);
    }
    if (metrics_.batch_targets) metrics_.batch_targets->Add(stats.targets);
    if (metrics_.warm_start_hits && stats.warm_start) {
      metrics_.warm_start_hits->Add();
    }
    for (size_t i = 0; i < refine_count; ++i) {
      ScoredCandidate& c = selected[i];
      c.ecs = estimator_->EstimateIntervals(state, fleet[c.charger_id],
                                            options_.derouting_norm_m);
      estimator_->ApplyExactDerouting(scratch.estimates[i],
                                      options_.derouting_norm_m, &c.ecs);
      c.score = ComputeScorePair(c.ecs, weights);
      if (metrics_.exact_refinements) metrics_.exact_refinements->Add();
    }
  } else {
    for (size_t i = 0; i < refine_count; ++i) {
      ScoredCandidate& c = selected[i];
      c.ecs = estimator_->EstimateWithExactDerouting(
          state, fleet[c.charger_id], options_.derouting_norm_m);
      c.score = ComputeScorePair(c.ecs, weights);
      if (metrics_.exact_refinements) metrics_.exact_refinements->Add();
    }
  }

  out->clear();
  out->reserve(selected.size());
  for (const ScoredCandidate& c : selected) {
    OfferingEntry e;
    e.charger_id = c.charger_id;
    e.score = c.score;
    e.ecs = c.ecs;
    e.eta_s = c.ecs.eta_s;
    out->push_back(e);
  }
  // Partial top-k: only the k kept rows' order is observable, and the
  // entry order is total (NaN-safe keys), so this is bit-identical to the
  // former sort-everything-then-truncate.
  SortOfferingEntriesTopK(*out, k);
}

void CknnEcProcessor::OrderByDeroutingBound(const VehicleState& state,
                                            QueryContext* ctx) {
  std::vector<ScoredCandidate>& selected = ctx->selected;
  const size_t n = selected.size();
  const size_t refine_count = std::min(options_.refine_limit, n);
  if (refine_count == 0 || refine_count >= n) return;  // order is moot

  const RoadNetwork& network = estimator_->derouting_service().network();
  const size_t num_nodes = network.NumNodes();
  const NodeId m = state.node != kInvalidNode
                       ? state.node
                       : network.NearestNode(state.position);
  const NodeId ra = state.return_node_a != kInvalidNode
                        ? state.return_node_a
                        : network.NearestNode(state.return_point_a);
  const NodeId rb = state.return_node_b != kInvalidNode
                        ? state.return_node_b
                        : network.NearestNode(state.return_point_b);
  if (m >= num_nodes || ra >= num_nodes || rb >= num_nodes) return;

  // Lower-bounded derouting cost: LB(m -> b) + min over return points of
  // LB(b -> r). Length-based bounds are admissible for the congested cost
  // too (the speed factor never exceeds 1, so congested cost >= length).
  // The CH backend's bound is the exact free-flow network distance — the
  // tightest length-based bound there is; ALT's triangle bounds are the
  // fallback.
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<double>& bounds = ctx->derouting.bounds;
  std::vector<uint32_t>& order = ctx->derouting.refine_order;
  bounds.clear();
  order.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    order[i] = i;
    const NodeId b = fleet[selected[i].charger_id].node;
    if (b >= num_nodes) {
      bounds.push_back(kInfiniteCost);
    } else if (ch_query_ != nullptr) {
      const double to_b = ch_query_->Search(m, b, kChLengthWeights);
      const double back = std::min(ch_query_->Search(b, ra, kChLengthWeights),
                                   ch_query_->Search(b, rb, kChLengthWeights));
      bounds.push_back(to_b + back);
    } else {
      const LandmarkIndex& lm = *options_.landmarks;
      bounds.push_back(lm.LowerBound(m, b) +
                       std::min(lm.LowerBound(b, ra), lm.LowerBound(b, rb)));
    }
  }
  // Ascending-cost total-order keys (NaN/inf bounds rank last, so an
  // unreachable charger can never displace a reachable one from the refine
  // set), ties keep the score order via the slot index. Only the
  // refine_count prefix is observable, so a partial select suffices. The
  // key lane reuses the intersection's (now idle) scratch.
  std::vector<uint64_t>& keys = ctx->lanes.keys_min;
  keys.resize(n);
  for (size_t i = 0; i < n; ++i) keys[i] = simd::AscendingCostKey(bounds[i]);
  simd::PartialSelectAscending(keys.data(), /*tiebreak=*/nullptr, order.data(),
                               n, refine_count);

  // Refine set to the front in bound order; everyone else keeps the score
  // order. Marks reuse the intersection's epoch array, so nothing clears.
  if (ctx->member_mark.size() < n) ctx->member_mark.resize(n, 0);
  const uint64_t epoch = ++ctx->mark_epoch;
  std::vector<ScoredCandidate>& staged = ctx->reorder;
  staged.clear();
  staged.reserve(n);
  for (size_t i = 0; i < refine_count; ++i) {
    staged.push_back(selected[order[i]]);
    ctx->member_mark[order[i]] = epoch;
  }
  for (size_t i = 0; i < n; ++i) {
    if (ctx->member_mark[i] != epoch) staged.push_back(selected[i]);
  }
  selected.swap(staged);
}

std::vector<OfferingEntry> CknnEcProcessor::RefineAndRank(
    const VehicleState& state, std::vector<ScoredCandidate> scored, size_t k,
    const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                &ctx, &out);
  return out;
}

void CknnEcProcessor::Query(const VehicleState& state, size_t k,
                            const ScoreWeights& weights, QueryContext* ctx,
                            std::vector<OfferingEntry>* out) {
  const std::vector<ChargerId>& candidates =
      FilterCandidates(state.position, ctx);
  const std::vector<ScoredCandidate>& scored =
      ScoreCandidates(state, candidates, weights, ctx);
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                ctx, out);
}

std::vector<OfferingEntry> CknnEcProcessor::Query(const VehicleState& state,
                                                  size_t k,
                                                  const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  Query(state, k, weights, &ctx, &out);
  return out;
}

}  // namespace ecocharge
