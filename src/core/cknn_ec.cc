#include "core/cknn_ec.h"

#include <algorithm>
#include <span>

#include "ch/ch_query.h"
#include "graph/landmarks.h"

namespace ecocharge {

namespace {

/// Descending by `key(c)`, ties by id (deterministic); order indices are
/// written into `*order`, which is reused across queries.
template <typename KeyFn>
void RankInto(const std::vector<ScoredCandidate>& candidates, KeyFn key,
              std::vector<uint32_t>* order) {
  order->resize(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) (*order)[i] = i;
  std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    double ka = key(candidates[a]);
    double kb = key(candidates[b]);
    if (ka != kb) return ka > kb;
    return candidates[a].charger_id < candidates[b].charger_id;
  });
}

/// Descending score midpoint, ties by id — the final sort of eq. 6.
bool MidpointBetter(const ScoredCandidate& a, const ScoredCandidate& b) {
  if (a.score.Mid() != b.score.Mid()) return a.score.Mid() > b.score.Mid();
  return a.charger_id < b.charger_id;
}

}  // namespace

PipelineMetrics PipelineMetrics::FromRegistry(obs::MetricsRegistry* registry) {
  PipelineMetrics m;
  if (!registry) return m;
  m.filter_ns = registry->GetHistogram("pipeline.filter_ns", "ns");
  m.score_ns = registry->GetHistogram("pipeline.score_ns", "ns");
  m.refine_ns = registry->GetHistogram("pipeline.refine_ns", "ns");
  m.candidates_scored =
      registry->GetCounter("pipeline.candidates_scored", "candidates");
  m.candidates_pruned =
      registry->GetCounter("pipeline.candidates_pruned", "candidates");
  m.exact_refinements =
      registry->GetCounter("pipeline.exact_refinements", "refinements");
  m.batch_derouting_ns =
      registry->GetHistogram("pipeline.batch_derouting_ns", "ns");
  m.batch_targets = registry->GetCounter("pipeline.batch_targets", "chargers");
  m.warm_start_hits =
      registry->GetCounter("pipeline.warm_start_hits", "sweeps");
  return m;
}

void IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k,
    QueryContext* ctx, std::vector<ScoredCandidate>* out) {
  out->clear();
  if (candidates.empty() || k == 0) return;

  std::vector<uint32_t>& by_min = ctx->order_min;
  std::vector<uint32_t>& by_max = ctx->order_max;
  RankInto(candidates, [](const ScoredCandidate& c) { return c.score.sc_min; },
           &by_min);
  RankInto(candidates, [](const ScoredCandidate& c) { return c.score.sc_max; },
           &by_max);

  // Deepen: take the top-d of both rankings, intersect, and grow d until
  // the intersection holds k chargers or everything has been considered.
  // Membership in the top-d of by_min is tracked by stamping member_mark
  // with a per-iteration epoch — no hash set, no clearing.
  size_t n = candidates.size();
  if (ctx->member_mark.size() < n) ctx->member_mark.resize(n, 0);
  size_t depth = std::min(k, n);
  std::vector<uint32_t>& common = ctx->common;
  while (true) {
    uint64_t epoch = ++ctx->mark_epoch;
    for (size_t i = 0; i < depth; ++i) ctx->member_mark[by_min[i]] = epoch;
    common.clear();
    for (size_t i = 0; i < depth; ++i) {
      if (ctx->member_mark[by_max[i]] == epoch) common.push_back(by_max[i]);
    }
    if (common.size() >= k || depth == n) break;
    depth = std::min(n, depth * 2);
  }

  // Order the common chargers by score midpoint (the final sort of eq. 6)
  // and keep k.
  std::sort(common.begin(), common.end(), [&](uint32_t a, uint32_t b) {
    return MidpointBetter(candidates[a], candidates[b]);
  });
  if (common.size() > k) common.resize(k);
  out->reserve(common.size());
  for (uint32_t idx : common) out->push_back(candidates[idx]);
}

std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k) {
  QueryContext ctx;
  std::vector<ScoredCandidate> out;
  IterativeDeepeningIntersection(candidates, k, &ctx, &out);
  return out;
}

CknnEcProcessor::CknnEcProcessor(EcEstimator* estimator,
                                 const SpatialIndex* charger_index,
                                 const CknnEcOptions& options)
    : estimator_(estimator),
      charger_index_(charger_index),
      options_(options) {
  if (options_.ch != nullptr) {
    ch_query_ = std::make_unique<ChQuery>(*options_.ch);
  }
}

CknnEcProcessor::~CknnEcProcessor() = default;

const std::vector<ChargerId>& CknnEcProcessor::FilterCandidates(
    const Point& position, QueryContext* ctx) const {
  obs::ScopedTimer timer(metrics_.filter_ns);
  charger_index_->RangeSearchInto(position, options_.radius_m, &ctx->spatial,
                                  &ctx->neighbors);
  ctx->candidates.clear();
  ctx->candidates.reserve(ctx->neighbors.size());
  for (const Neighbor& n : ctx->neighbors) ctx->candidates.push_back(n.id);
  return ctx->candidates;
}

std::vector<ChargerId> CknnEcProcessor::FilterCandidates(
    const Point& position) const {
  QueryContext ctx;
  FilterCandidates(position, &ctx);
  return std::move(ctx.candidates);
}

const std::vector<ScoredCandidate>& CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights, QueryContext* ctx) {
  obs::ScopedTimer timer(metrics_.score_ns);
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<ScoredCandidate>& scored = ctx->scored;
  scored.clear();
  scored.reserve(candidate_ids.size());
  for (ChargerId id : candidate_ids) {
    if (id >= fleet.size()) continue;
    ScoredCandidate c;
    c.charger_id = id;
    c.ecs = estimator_->EstimateIntervals(state, fleet[id],
                                          options_.derouting_norm_m);
    c.score = ComputeScorePair(c.ecs, weights);
    scored.push_back(c);
  }
  if (metrics_.candidates_scored && !scored.empty()) {
    metrics_.candidates_scored->Add(scored.size());
  }
  return scored;
}

std::vector<ScoredCandidate> CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights) {
  QueryContext ctx;
  ScoreCandidates(state, candidate_ids, weights, &ctx);
  return std::move(ctx.scored);
}

void CknnEcProcessor::RefineAndRank(const VehicleState& state,
                                    const std::vector<ScoredCandidate>* scored,
                                    size_t k, const ScoreWeights& weights,
                                    bool refine_exact_derouting,
                                    QueryContext* ctx,
                                    std::vector<OfferingEntry>* out) {
  obs::ScopedTimer timer(metrics_.refine_ns);
  // Intersection over a pool slightly deeper than k, so the exact-derouting
  // refinement has alternatives to promote.
  size_t pool =
      refine_exact_derouting ? std::max(k, options_.refine_limit) : k;
  std::vector<ScoredCandidate>& selected = ctx->selected;
  if (options_.use_intersection) {
    IterativeDeepeningIntersection(*scored, pool, ctx, &selected);
  } else {
    // Ablation path: plain top-`pool` by score midpoint. Rank the indices
    // so `*scored` (often a live cache entry) stays untouched.
    std::vector<uint32_t>& order = ctx->order_min;
    RankInto(*scored, [](const ScoredCandidate& c) { return c.score.Mid(); },
             &order);
    if (order.size() > pool) order.resize(pool);
    selected.clear();
    selected.reserve(order.size());
    for (uint32_t idx : order) selected.push_back((*scored)[idx]);
  }

  if (metrics_.candidates_pruned && scored->size() > selected.size()) {
    metrics_.candidates_pruned->Add(scored->size() - selected.size());
  }

  const std::vector<EvCharger>& fleet = estimator_->fleet();
  const size_t refine_count =
      refine_exact_derouting ? std::min(options_.refine_limit, selected.size())
                             : 0;
  if (refine_count > 0 && (options_.ch || options_.landmarks) &&
      options_.landmark_refine_order) {
    OrderByDeroutingBound(state, ctx);
  }

  if (refine_count > 0 && options_.batch_derouting) {
    // Batched refinement: one forward sweep covers every outbound leg, one
    // (possibly warm) backward extension every return leg. The EIS fetch
    // sequence stays identical to the per-candidate path because the batch
    // touches no EIS and the EstimateIntervals loop below runs in the same
    // candidate order.
    DeroutingBatchScratch& scratch = ctx->derouting;
    scratch.chargers.clear();
    for (size_t i = 0; i < refine_count; ++i) {
      scratch.chargers.push_back(&fleet[selected[i].charger_id]);
    }
    BatchSweepStats stats;
    {
      obs::ScopedTimer batch_timer(metrics_.batch_derouting_ns);
      stats = estimator_->ExactDeroutingBatch(
          state, std::span<const ChargerRef>(scratch.chargers), &scratch);
    }
    if (metrics_.batch_targets) metrics_.batch_targets->Add(stats.targets);
    if (metrics_.warm_start_hits && stats.warm_start) {
      metrics_.warm_start_hits->Add();
    }
    for (size_t i = 0; i < refine_count; ++i) {
      ScoredCandidate& c = selected[i];
      c.ecs = estimator_->EstimateIntervals(state, fleet[c.charger_id],
                                            options_.derouting_norm_m);
      estimator_->ApplyExactDerouting(scratch.estimates[i],
                                      options_.derouting_norm_m, &c.ecs);
      c.score = ComputeScorePair(c.ecs, weights);
      if (metrics_.exact_refinements) metrics_.exact_refinements->Add();
    }
  } else {
    for (size_t i = 0; i < refine_count; ++i) {
      ScoredCandidate& c = selected[i];
      c.ecs = estimator_->EstimateWithExactDerouting(
          state, fleet[c.charger_id], options_.derouting_norm_m);
      c.score = ComputeScorePair(c.ecs, weights);
      if (metrics_.exact_refinements) metrics_.exact_refinements->Add();
    }
  }

  out->clear();
  out->reserve(selected.size());
  for (const ScoredCandidate& c : selected) {
    OfferingEntry e;
    e.charger_id = c.charger_id;
    e.score = c.score;
    e.ecs = c.ecs;
    e.eta_s = c.ecs.eta_s;
    out->push_back(e);
  }
  SortOfferingEntries(*out);
  if (out->size() > k) out->resize(k);
}

void CknnEcProcessor::OrderByDeroutingBound(const VehicleState& state,
                                            QueryContext* ctx) {
  std::vector<ScoredCandidate>& selected = ctx->selected;
  const size_t n = selected.size();
  const size_t refine_count = std::min(options_.refine_limit, n);
  if (refine_count == 0 || refine_count >= n) return;  // order is moot

  const RoadNetwork& network = estimator_->derouting_service().network();
  const size_t num_nodes = network.NumNodes();
  const NodeId m = state.node != kInvalidNode
                       ? state.node
                       : network.NearestNode(state.position);
  const NodeId ra = state.return_node_a != kInvalidNode
                        ? state.return_node_a
                        : network.NearestNode(state.return_point_a);
  const NodeId rb = state.return_node_b != kInvalidNode
                        ? state.return_node_b
                        : network.NearestNode(state.return_point_b);
  if (m >= num_nodes || ra >= num_nodes || rb >= num_nodes) return;

  // Lower-bounded derouting cost: LB(m -> b) + min over return points of
  // LB(b -> r). Length-based bounds are admissible for the congested cost
  // too (the speed factor never exceeds 1, so congested cost >= length).
  // The CH backend's bound is the exact free-flow network distance — the
  // tightest length-based bound there is; ALT's triangle bounds are the
  // fallback.
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<double>& bounds = ctx->derouting.bounds;
  std::vector<uint32_t>& order = ctx->derouting.refine_order;
  bounds.clear();
  order.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    order[i] = i;
    const NodeId b = fleet[selected[i].charger_id].node;
    if (b >= num_nodes) {
      bounds.push_back(kInfiniteCost);
    } else if (ch_query_ != nullptr) {
      const double to_b = ch_query_->Search(m, b, kChLengthWeights);
      const double back = std::min(ch_query_->Search(b, ra, kChLengthWeights),
                                   ch_query_->Search(b, rb, kChLengthWeights));
      bounds.push_back(to_b + back);
    } else {
      const LandmarkIndex& lm = *options_.landmarks;
      bounds.push_back(lm.LowerBound(m, b) +
                       std::min(lm.LowerBound(b, ra), lm.LowerBound(b, rb)));
    }
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (bounds[a] != bounds[b]) return bounds[a] < bounds[b];
    return a < b;  // stable: ties keep the score order
  });

  // Refine set to the front in bound order; everyone else keeps the score
  // order. Marks reuse the intersection's epoch array, so nothing clears.
  if (ctx->member_mark.size() < n) ctx->member_mark.resize(n, 0);
  const uint64_t epoch = ++ctx->mark_epoch;
  std::vector<ScoredCandidate>& staged = ctx->reorder;
  staged.clear();
  staged.reserve(n);
  for (size_t i = 0; i < refine_count; ++i) {
    staged.push_back(selected[order[i]]);
    ctx->member_mark[order[i]] = epoch;
  }
  for (size_t i = 0; i < n; ++i) {
    if (ctx->member_mark[i] != epoch) staged.push_back(selected[i]);
  }
  selected.swap(staged);
}

std::vector<OfferingEntry> CknnEcProcessor::RefineAndRank(
    const VehicleState& state, std::vector<ScoredCandidate> scored, size_t k,
    const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                &ctx, &out);
  return out;
}

void CknnEcProcessor::Query(const VehicleState& state, size_t k,
                            const ScoreWeights& weights, QueryContext* ctx,
                            std::vector<OfferingEntry>* out) {
  const std::vector<ChargerId>& candidates =
      FilterCandidates(state.position, ctx);
  const std::vector<ScoredCandidate>& scored =
      ScoreCandidates(state, candidates, weights, ctx);
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                ctx, out);
}

std::vector<OfferingEntry> CknnEcProcessor::Query(const VehicleState& state,
                                                  size_t k,
                                                  const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  Query(state, k, weights, &ctx, &out);
  return out;
}

}  // namespace ecocharge
