#include "core/cknn_ec.h"

#include <algorithm>

namespace ecocharge {

namespace {

/// Descending by `key(c)`, ties by id (deterministic); order indices are
/// written into `*order`, which is reused across queries.
template <typename KeyFn>
void RankInto(const std::vector<ScoredCandidate>& candidates, KeyFn key,
              std::vector<uint32_t>* order) {
  order->resize(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) (*order)[i] = i;
  std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    double ka = key(candidates[a]);
    double kb = key(candidates[b]);
    if (ka != kb) return ka > kb;
    return candidates[a].charger_id < candidates[b].charger_id;
  });
}

/// Descending score midpoint, ties by id — the final sort of eq. 6.
bool MidpointBetter(const ScoredCandidate& a, const ScoredCandidate& b) {
  if (a.score.Mid() != b.score.Mid()) return a.score.Mid() > b.score.Mid();
  return a.charger_id < b.charger_id;
}

}  // namespace

PipelineMetrics PipelineMetrics::FromRegistry(obs::MetricsRegistry* registry) {
  PipelineMetrics m;
  if (!registry) return m;
  m.filter_ns = registry->GetHistogram("pipeline.filter_ns", "ns");
  m.score_ns = registry->GetHistogram("pipeline.score_ns", "ns");
  m.refine_ns = registry->GetHistogram("pipeline.refine_ns", "ns");
  m.candidates_scored =
      registry->GetCounter("pipeline.candidates_scored", "candidates");
  m.candidates_pruned =
      registry->GetCounter("pipeline.candidates_pruned", "candidates");
  m.exact_refinements =
      registry->GetCounter("pipeline.exact_refinements", "refinements");
  return m;
}

void IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k,
    QueryContext* ctx, std::vector<ScoredCandidate>* out) {
  out->clear();
  if (candidates.empty() || k == 0) return;

  std::vector<uint32_t>& by_min = ctx->order_min;
  std::vector<uint32_t>& by_max = ctx->order_max;
  RankInto(candidates, [](const ScoredCandidate& c) { return c.score.sc_min; },
           &by_min);
  RankInto(candidates, [](const ScoredCandidate& c) { return c.score.sc_max; },
           &by_max);

  // Deepen: take the top-d of both rankings, intersect, and grow d until
  // the intersection holds k chargers or everything has been considered.
  // Membership in the top-d of by_min is tracked by stamping member_mark
  // with a per-iteration epoch — no hash set, no clearing.
  size_t n = candidates.size();
  if (ctx->member_mark.size() < n) ctx->member_mark.resize(n, 0);
  size_t depth = std::min(k, n);
  std::vector<uint32_t>& common = ctx->common;
  while (true) {
    uint64_t epoch = ++ctx->mark_epoch;
    for (size_t i = 0; i < depth; ++i) ctx->member_mark[by_min[i]] = epoch;
    common.clear();
    for (size_t i = 0; i < depth; ++i) {
      if (ctx->member_mark[by_max[i]] == epoch) common.push_back(by_max[i]);
    }
    if (common.size() >= k || depth == n) break;
    depth = std::min(n, depth * 2);
  }

  // Order the common chargers by score midpoint (the final sort of eq. 6)
  // and keep k.
  std::sort(common.begin(), common.end(), [&](uint32_t a, uint32_t b) {
    return MidpointBetter(candidates[a], candidates[b]);
  });
  if (common.size() > k) common.resize(k);
  out->reserve(common.size());
  for (uint32_t idx : common) out->push_back(candidates[idx]);
}

std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k) {
  QueryContext ctx;
  std::vector<ScoredCandidate> out;
  IterativeDeepeningIntersection(candidates, k, &ctx, &out);
  return out;
}

CknnEcProcessor::CknnEcProcessor(EcEstimator* estimator,
                                 const SpatialIndex* charger_index,
                                 const CknnEcOptions& options)
    : estimator_(estimator),
      charger_index_(charger_index),
      options_(options) {}

const std::vector<ChargerId>& CknnEcProcessor::FilterCandidates(
    const Point& position, QueryContext* ctx) const {
  obs::ScopedTimer timer(metrics_.filter_ns);
  charger_index_->RangeSearchInto(position, options_.radius_m, &ctx->spatial,
                                  &ctx->neighbors);
  ctx->candidates.clear();
  ctx->candidates.reserve(ctx->neighbors.size());
  for (const Neighbor& n : ctx->neighbors) ctx->candidates.push_back(n.id);
  return ctx->candidates;
}

std::vector<ChargerId> CknnEcProcessor::FilterCandidates(
    const Point& position) const {
  QueryContext ctx;
  FilterCandidates(position, &ctx);
  return std::move(ctx.candidates);
}

const std::vector<ScoredCandidate>& CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights, QueryContext* ctx) {
  obs::ScopedTimer timer(metrics_.score_ns);
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<ScoredCandidate>& scored = ctx->scored;
  scored.clear();
  scored.reserve(candidate_ids.size());
  for (ChargerId id : candidate_ids) {
    if (id >= fleet.size()) continue;
    ScoredCandidate c;
    c.charger_id = id;
    c.ecs = estimator_->EstimateIntervals(state, fleet[id],
                                          options_.derouting_norm_m);
    c.score = ComputeScorePair(c.ecs, weights);
    scored.push_back(c);
  }
  if (metrics_.candidates_scored && !scored.empty()) {
    metrics_.candidates_scored->Add(scored.size());
  }
  return scored;
}

std::vector<ScoredCandidate> CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights) {
  QueryContext ctx;
  ScoreCandidates(state, candidate_ids, weights, &ctx);
  return std::move(ctx.scored);
}

void CknnEcProcessor::RefineAndRank(const VehicleState& state,
                                    const std::vector<ScoredCandidate>* scored,
                                    size_t k, const ScoreWeights& weights,
                                    bool refine_exact_derouting,
                                    QueryContext* ctx,
                                    std::vector<OfferingEntry>* out) {
  obs::ScopedTimer timer(metrics_.refine_ns);
  // Intersection over a pool slightly deeper than k, so the exact-derouting
  // refinement has alternatives to promote.
  size_t pool =
      refine_exact_derouting ? std::max(k, options_.refine_limit) : k;
  std::vector<ScoredCandidate>& selected = ctx->selected;
  if (options_.use_intersection) {
    IterativeDeepeningIntersection(*scored, pool, ctx, &selected);
  } else {
    // Ablation path: plain top-`pool` by score midpoint. Rank the indices
    // so `*scored` (often a live cache entry) stays untouched.
    std::vector<uint32_t>& order = ctx->order_min;
    RankInto(*scored, [](const ScoredCandidate& c) { return c.score.Mid(); },
             &order);
    if (order.size() > pool) order.resize(pool);
    selected.clear();
    selected.reserve(order.size());
    for (uint32_t idx : order) selected.push_back((*scored)[idx]);
  }

  if (metrics_.candidates_pruned && scored->size() > selected.size()) {
    metrics_.candidates_pruned->Add(scored->size() - selected.size());
  }

  const std::vector<EvCharger>& fleet = estimator_->fleet();
  out->clear();
  out->reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    ScoredCandidate& c = selected[i];
    if (refine_exact_derouting && i < options_.refine_limit) {
      c.ecs = estimator_->EstimateWithExactDerouting(
          state, fleet[c.charger_id], options_.derouting_norm_m);
      c.score = ComputeScorePair(c.ecs, weights);
      if (metrics_.exact_refinements) metrics_.exact_refinements->Add();
    }
    OfferingEntry e;
    e.charger_id = c.charger_id;
    e.score = c.score;
    e.ecs = c.ecs;
    e.eta_s = c.ecs.eta_s;
    out->push_back(e);
  }
  SortOfferingEntries(*out);
  if (out->size() > k) out->resize(k);
}

std::vector<OfferingEntry> CknnEcProcessor::RefineAndRank(
    const VehicleState& state, std::vector<ScoredCandidate> scored, size_t k,
    const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                &ctx, &out);
  return out;
}

void CknnEcProcessor::Query(const VehicleState& state, size_t k,
                            const ScoreWeights& weights, QueryContext* ctx,
                            std::vector<OfferingEntry>* out) {
  const std::vector<ChargerId>& candidates =
      FilterCandidates(state.position, ctx);
  const std::vector<ScoredCandidate>& scored =
      ScoreCandidates(state, candidates, weights, ctx);
  RefineAndRank(state, &scored, k, weights, options_.refine_exact_derouting,
                ctx, out);
}

std::vector<OfferingEntry> CknnEcProcessor::Query(const VehicleState& state,
                                                  size_t k,
                                                  const ScoreWeights& weights) {
  QueryContext ctx;
  std::vector<OfferingEntry> out;
  Query(state, k, weights, &ctx, &out);
  return out;
}

}  // namespace ecocharge
