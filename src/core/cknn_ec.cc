#include "core/cknn_ec.h"

#include <algorithm>
#include <unordered_set>

namespace ecocharge {

namespace {

/// Descending by `key(c)`, ties by id (deterministic).
template <typename KeyFn>
std::vector<uint32_t> RankBy(const std::vector<ScoredCandidate>& candidates,
                             KeyFn key) {
  std::vector<uint32_t> order(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    double ka = key(candidates[a]);
    double kb = key(candidates[b]);
    if (ka != kb) return ka > kb;
    return candidates[a].charger_id < candidates[b].charger_id;
  });
  return order;
}

}  // namespace

std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k) {
  std::vector<ScoredCandidate> result;
  if (candidates.empty() || k == 0) return result;

  std::vector<uint32_t> by_min = RankBy(
      candidates, [](const ScoredCandidate& c) { return c.score.sc_min; });
  std::vector<uint32_t> by_max = RankBy(
      candidates, [](const ScoredCandidate& c) { return c.score.sc_max; });

  // Deepen: take the top-d of both rankings, intersect, and grow d until
  // the intersection holds k chargers or everything has been considered.
  size_t n = candidates.size();
  size_t depth = std::min(k, n);
  std::vector<uint32_t> common;
  while (true) {
    std::unordered_set<uint32_t> min_set(by_min.begin(),
                                         by_min.begin() + depth);
    common.clear();
    for (size_t i = 0; i < depth; ++i) {
      if (min_set.count(by_max[i])) common.push_back(by_max[i]);
    }
    if (common.size() >= k || depth == n) break;
    depth = std::min(n, depth * 2);
  }

  // Order the common chargers by score midpoint (the final sort of eq. 6)
  // and keep k.
  std::sort(common.begin(), common.end(), [&](uint32_t a, uint32_t b) {
    double ka = candidates[a].score.Mid();
    double kb = candidates[b].score.Mid();
    if (ka != kb) return ka > kb;
    return candidates[a].charger_id < candidates[b].charger_id;
  });
  if (common.size() > k) common.resize(k);
  result.reserve(common.size());
  for (uint32_t idx : common) result.push_back(candidates[idx]);
  return result;
}

CknnEcProcessor::CknnEcProcessor(EcEstimator* estimator,
                                 const QuadTree* charger_index,
                                 const CknnEcOptions& options)
    : estimator_(estimator),
      charger_index_(charger_index),
      options_(options) {}

std::vector<ChargerId> CknnEcProcessor::FilterCandidates(
    const Point& position) const {
  std::vector<Neighbor> in_range =
      charger_index_->RangeSearch(position, options_.radius_m);
  std::vector<ChargerId> ids;
  ids.reserve(in_range.size());
  for (const Neighbor& n : in_range) ids.push_back(n.id);
  return ids;
}

std::vector<ScoredCandidate> CknnEcProcessor::ScoreCandidates(
    const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
    const ScoreWeights& weights) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<ScoredCandidate> scored;
  scored.reserve(candidate_ids.size());
  for (ChargerId id : candidate_ids) {
    if (id >= fleet.size()) continue;
    ScoredCandidate c;
    c.charger_id = id;
    c.ecs = estimator_->EstimateIntervals(state, fleet[id],
                                          options_.derouting_norm_m);
    c.score = ComputeScorePair(c.ecs, weights);
    scored.push_back(c);
  }
  return scored;
}

std::vector<OfferingEntry> CknnEcProcessor::RefineAndRank(
    const VehicleState& state, std::vector<ScoredCandidate> scored, size_t k,
    const ScoreWeights& weights) {
  // Intersection over a pool slightly deeper than k, so the exact-derouting
  // refinement has alternatives to promote.
  size_t pool = options_.refine_exact_derouting
                    ? std::max(k, options_.refine_limit)
                    : k;
  std::vector<ScoredCandidate> selected;
  if (options_.use_intersection) {
    selected = IterativeDeepeningIntersection(scored, pool);
  } else {
    // Ablation path: plain top-`pool` by score midpoint.
    std::sort(scored.begin(), scored.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                if (a.score.Mid() != b.score.Mid()) {
                  return a.score.Mid() > b.score.Mid();
                }
                return a.charger_id < b.charger_id;
              });
    if (scored.size() > pool) scored.resize(pool);
    selected = std::move(scored);
  }

  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<OfferingEntry> entries;
  entries.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    ScoredCandidate& c = selected[i];
    if (options_.refine_exact_derouting && i < options_.refine_limit) {
      c.ecs = estimator_->EstimateWithExactDerouting(
          state, fleet[c.charger_id], options_.derouting_norm_m);
      c.score = ComputeScorePair(c.ecs, weights);
    }
    OfferingEntry e;
    e.charger_id = c.charger_id;
    e.score = c.score;
    e.ecs = c.ecs;
    e.eta_s = c.ecs.eta_s;
    entries.push_back(e);
  }
  SortOfferingEntries(entries);
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::vector<OfferingEntry> CknnEcProcessor::Query(const VehicleState& state,
                                                  size_t k,
                                                  const ScoreWeights& weights) {
  std::vector<ChargerId> candidates = FilterCandidates(state.position);
  std::vector<ScoredCandidate> scored =
      ScoreCandidates(state, candidates, weights);
  return RefineAndRank(state, std::move(scored), k, weights);
}

}  // namespace ecocharge
