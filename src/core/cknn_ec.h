#ifndef ECOCHARGE_CORE_CKNN_EC_H_
#define ECOCHARGE_CORE_CKNN_EC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ec_estimator.h"
#include "core/offering_table.h"
#include "core/query_context.h"
#include "obs/metrics.h"
#include "spatial/spatial_index.h"

namespace ecocharge {

class ChIndex;
class ChQuery;
class LandmarkIndex;

/// \brief Resolved handles for the query pipeline's phase instrumentation.
///
/// All pointers are borrowed from a MetricsRegistry (which must outlive the
/// processor) and may individually be null; a default-constructed instance
/// disables instrumentation entirely. Handles resolve once at attach time,
/// so the per-query cost is a null check plus a relaxed atomic op per phase
/// — nothing allocates on the query path.
struct PipelineMetrics {
  obs::Histogram* filter_ns = nullptr;  ///< filtering-phase wall time
  obs::Histogram* score_ns = nullptr;   ///< interval-EC scoring wall time
  obs::Histogram* refine_ns = nullptr;  ///< refinement-phase wall time
  obs::Counter* candidates_scored = nullptr;  ///< survivors of filtering
  obs::Counter* candidates_pruned = nullptr;  ///< dropped by eq. 6 ranking
  obs::Counter* exact_refinements = nullptr;  ///< network-exact upgrades
  obs::Histogram* batch_derouting_ns = nullptr;  ///< batched-sweep wall time
  obs::Counter* batch_targets = nullptr;     ///< chargers covered per batch
  obs::Counter* warm_start_hits = nullptr;   ///< backward sweeps reused
  obs::Counter* simd_batches = nullptr;  ///< vector-kernel invocations
  obs::Counter* simd_lanes = nullptr;    ///< candidate lanes they streamed

  /// Resolves the canonical `pipeline.*` names on `registry`.
  static PipelineMetrics FromRegistry(obs::MetricsRegistry* registry);
};

/// \brief Eq. (6): intersection of the top-d rankings by SC_min and by
/// SC_max, deepened iteratively until k common chargers are found (or the
/// candidate pool is exhausted). Writes at most k candidates into `*out`
/// ordered by descending score midpoint, using `ctx` rank/mark buffers
/// (zero allocations once the context is warm). `out` must not alias
/// `candidates`. Both rankings are built over SoA key lanes and selected
/// with a partial top-d select; `use_simd` picks the vector kernels for the
/// key/midpoint conversions, false the scalar reference — the selection
/// order is bit-identical either way (shared integer-key machinery).
void IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k,
    QueryContext* ctx, std::vector<ScoredCandidate>* out,
    bool use_simd = true);

/// Allocating convenience form of the above.
std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k);

/// \brief Tuning of the CkNN-EC query processor.
struct CknnEcOptions {
  double radius_m = 50000.0;   ///< R: chargers beyond this are filtered out
  size_t refine_limit = 8;     ///< refinement: exact derouting for this many
  bool refine_exact_derouting = true;

  /// Normalization constant for the D score inside this query's objective
  /// — the "environment's maximum derouting distance", which the paper
  /// scales with the user's radius (2R). 0 uses the estimator default.
  double derouting_norm_m = 0.0;

  /// Eq. 6's min/max-ranking intersection. Disabling it ranks candidates
  /// by score midpoint only — the ablation DESIGN.md calls out (interval
  /// robustness vs a single point estimate).
  bool use_intersection = true;

  /// Batched exact refinement: one multi-target forward sweep plus one
  /// (possibly warm) backward sweep per query instead of `refine_limit`
  /// point-to-point searches. Produces bit-identical Offering Tables to
  /// the per-candidate path (both run on the same sweep primitives); off
  /// is the escape hatch / A-B baseline.
  bool batch_derouting = true;

  /// Optional ALT lower bounds (borrowed, may be null). With
  /// `landmark_refine_order`, refinement candidates are picked by
  /// ascending lower-bounded derouting cost instead of score-midpoint
  /// order, so the batch target set stays tight around the route.
  const LandmarkIndex* landmarks = nullptr;
  bool landmark_refine_order = true;  ///< effective with `landmarks` or `ch`

  /// Optional contraction hierarchy (borrowed, may be null). When set, the
  /// candidate ordering uses exact free-flow (length-metric) CH distances
  /// as the lower bound instead of the ALT triangle bounds — still
  /// admissible for the congested cost (speed factors never exceed 1) and
  /// strictly tighter, so the refine set hugs the route more closely.
  /// Takes precedence over `landmarks` for ordering.
  const ChIndex* ch = nullptr;

  /// Vectorized filter/score hot path (DESIGN.md §15): candidate pruning,
  /// eq. 4–5 interval scoring, and ranking-key conversion run as SIMD
  /// kernels over the QueryContext's SoA lanes. Off (`--no-simd`) routes
  /// the same lanes through the scalar reference kernels — the parity
  /// oracle; Offering Tables are bit-identical either way.
  bool use_simd = true;
};

/// \brief The CkNN-EC query processor (Section III-C).
///
/// Filtering phase: a range query against the injected SpatialIndex keeps
/// only chargers within R of the vehicle, and each survivor gets cheap
/// interval ECs (forecast L, A; closed-form D bounds) folded into the
/// SC_min/SC_max pair.
/// Refinement phase: iterative-deepening intersection (eq. 6) selects the
/// candidates, and the top `refine_limit` get network-exact derouting
/// before the final ordering.
///
/// The processor is index-agnostic: any SpatialIndex backend (quadtree,
/// R-tree, grid, kd-tree, linear scan) produces the same candidate set in
/// the same canonical order, so the resulting Offering Tables are
/// bit-identical across backends. Each stage has a QueryContext form that
/// reuses caller-owned buffers — the steady-state zero-allocation path —
/// plus an allocating convenience form.
class CknnEcProcessor {
 public:
  /// \param charger_index spatial index over the fleet's positions, where
  ///        item ids equal positions in the fleet vector (not owned)
  CknnEcProcessor(EcEstimator* estimator, const SpatialIndex* charger_index,
                  const CknnEcOptions& options);
  ~CknnEcProcessor();

  /// Candidate ids within R of `position` (the filtering phase's spatial
  /// part), exposed so Dynamic Caching can reuse the candidate set.
  /// Results land in `ctx->candidates`; the returned reference aliases it.
  const std::vector<ChargerId>& FilterCandidates(const Point& position,
                                                 QueryContext* ctx) const;

  /// Allocating convenience form.
  std::vector<ChargerId> FilterCandidates(const Point& position) const;

  /// Scores `candidate_ids` with estimated interval ECs into
  /// `ctx->scored`; the returned reference aliases it. `candidate_ids`
  /// may alias `ctx->candidates`.
  const std::vector<ScoredCandidate>& ScoreCandidates(
      const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
      const ScoreWeights& weights, QueryContext* ctx);

  /// Allocating convenience form.
  std::vector<ScoredCandidate> ScoreCandidates(
      const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
      const ScoreWeights& weights);

  /// Full query: filter, score, intersect, refine. Writes the top-k
  /// entries best-first into `*out` (typically `&ctx->entries` or a
  /// reused OfferingTable's entry vector).
  void Query(const VehicleState& state, size_t k, const ScoreWeights& weights,
             QueryContext* ctx, std::vector<OfferingEntry>* out);

  /// Allocating convenience form.
  std::vector<OfferingEntry> Query(const VehicleState& state, size_t k,
                                   const ScoreWeights& weights);

  /// Refinement on an already-scored pool in `*scored` (typically
  /// `&ctx->scored`; used by the cached path, which skips filtering).
  /// `refine_exact_derouting` toggles the network-exact refinement for
  /// this call — the Dynamic-Caching hit path passes false to keep the
  /// adaptation cheap. `*scored` itself is left unmodified; winners are
  /// copied through `ctx->selected` into `*out`.
  void RefineAndRank(const VehicleState& state,
                     const std::vector<ScoredCandidate>* scored, size_t k,
                     const ScoreWeights& weights, bool refine_exact_derouting,
                     QueryContext* ctx, std::vector<OfferingEntry>* out);

  /// Allocating convenience form using the options' refinement setting.
  std::vector<OfferingEntry> RefineAndRank(
      const VehicleState& state, std::vector<ScoredCandidate> scored,
      size_t k, const ScoreWeights& weights);

  const CknnEcOptions& options() const { return options_; }

  /// Installs phase timers and candidate counters (copied by value; the
  /// histograms/counters they point at must outlive the processor). A
  /// default-constructed PipelineMetrics turns instrumentation back off.
  void set_metrics(const PipelineMetrics& metrics) { metrics_ = metrics; }

  /// Convenience: resolve the canonical `pipeline.*` names on `registry`
  /// and install them; null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry) {
    metrics_ = registry ? PipelineMetrics::FromRegistry(registry)
                        : PipelineMetrics{};
  }

  const PipelineMetrics& metrics() const { return metrics_; }

 private:
  /// Reorders `ctx->selected` so the `refine_limit` candidates with the
  /// smallest ALT-lower-bounded derouting cost come first (in bound
  /// order); the remainder keeps its score order. No-op when every
  /// selected candidate gets refined anyway or a query node can't be
  /// resolved. Runs before the batch/per-candidate branch so both paths
  /// refine the same set.
  void OrderByDeroutingBound(const VehicleState& state, QueryContext* ctx);

  EcEstimator* estimator_;
  const SpatialIndex* charger_index_;
  CknnEcOptions options_;
  PipelineMetrics metrics_;
  /// Length-metric CH query workspace for OrderByDeroutingBound; null
  /// unless options_.ch is set.
  std::unique_ptr<ChQuery> ch_query_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_CKNN_EC_H_
