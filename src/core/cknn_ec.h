#ifndef ECOCHARGE_CORE_CKNN_EC_H_
#define ECOCHARGE_CORE_CKNN_EC_H_

#include <cstdint>
#include <vector>

#include "core/ec_estimator.h"
#include "core/offering_table.h"
#include "spatial/quadtree.h"

namespace ecocharge {

/// \brief A scored candidate inside the CkNN-EC pipeline.
struct ScoredCandidate {
  ChargerId charger_id = 0;
  ScorePair score;
  EcIntervals ecs;
};

/// \brief Eq. (6): intersection of the top-d rankings by SC_min and by
/// SC_max, deepened iteratively until k common chargers are found (or the
/// candidate pool is exhausted). Returns at most k candidates ordered by
/// descending score midpoint.
std::vector<ScoredCandidate> IterativeDeepeningIntersection(
    const std::vector<ScoredCandidate>& candidates, size_t k);

/// \brief Tuning of the CkNN-EC query processor.
struct CknnEcOptions {
  double radius_m = 50000.0;   ///< R: chargers beyond this are filtered out
  size_t refine_limit = 8;     ///< refinement: exact derouting for this many
  bool refine_exact_derouting = true;

  /// Normalization constant for the D score inside this query's objective
  /// — the "environment's maximum derouting distance", which the paper
  /// scales with the user's radius (2R). 0 uses the estimator default.
  double derouting_norm_m = 0.0;

  /// Eq. 6's min/max-ranking intersection. Disabling it ranks candidates
  /// by score midpoint only — the ablation DESIGN.md calls out (interval
  /// robustness vs a single point estimate).
  bool use_intersection = true;
};

/// \brief The CkNN-EC query processor (Section III-C).
///
/// Filtering phase: a quadtree range query keeps only chargers within R of
/// the vehicle, and each survivor gets cheap interval ECs (forecast L, A;
/// closed-form D bounds) folded into the SC_min/SC_max pair.
/// Refinement phase: iterative-deepening intersection (eq. 6) selects the
/// candidates, and the top `refine_limit` get network-exact derouting
/// before the final ordering.
class CknnEcProcessor {
 public:
  /// \param charger_index quadtree over the fleet's positions, where item
  ///        ids equal positions in the fleet vector (not owned)
  CknnEcProcessor(EcEstimator* estimator, const QuadTree* charger_index,
                  const CknnEcOptions& options);

  /// Candidate ids within R of `position` (the filtering phase's spatial
  /// part), exposed so Dynamic Caching can reuse the candidate set.
  std::vector<ChargerId> FilterCandidates(const Point& position) const;

  /// Scores `candidate_ids` with estimated interval ECs.
  std::vector<ScoredCandidate> ScoreCandidates(
      const VehicleState& state, const std::vector<ChargerId>& candidate_ids,
      const ScoreWeights& weights);

  /// Full query: filter, score, intersect, refine. Returns the top-k
  /// entries best-first.
  std::vector<OfferingEntry> Query(const VehicleState& state, size_t k,
                                   const ScoreWeights& weights);

  /// Refinement on an already-scored pool (used by the cached path, which
  /// skips filtering).
  std::vector<OfferingEntry> RefineAndRank(
      const VehicleState& state, std::vector<ScoredCandidate> scored,
      size_t k, const ScoreWeights& weights);

  const CknnEcOptions& options() const { return options_; }

 private:
  EcEstimator* estimator_;
  const QuadTree* charger_index_;
  CknnEcOptions options_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_CKNN_EC_H_
