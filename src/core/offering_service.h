#ifndef ECOCHARGE_CORE_OFFERING_SERVICE_H_
#define ECOCHARGE_CORE_OFFERING_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/ecocharge.h"
#include "core/protocol.h"

namespace ecocharge {

/// \brief Request/serve statistics of one service instance.
struct OfferingServiceStats {
  uint64_t requests = 0;
  uint64_t malformed_requests = 0;
  uint64_t tables_served = 0;
  uint64_t cache_adaptations = 0;
};

/// \brief The Mode-2 server loop: decodes wire requests, ranks with a
/// per-client EcoCharge instance, and encodes the Offering Table reply.
///
/// Each client (vehicle) gets its own EcoChargeRanker so Dynamic Caching
/// tracks that vehicle's movement — the paper's EIS serves many vehicles
/// concurrently, each with its own solution cache. Client state is evicted
/// after `client_ttl_s` of inactivity.
class OfferingService {
 public:
  /// \param estimator shared EC estimator (not owned)
  /// \param charger_index spatial index over the fleet (not owned)
  OfferingService(EcEstimator* estimator, const SpatialIndex* charger_index,
                  const ScoreWeights& weights,
                  const EcoChargeOptions& options,
                  double client_ttl_s = kSecondsPerHour);

  /// Handles one wire request from `client_id`; returns the encoded reply
  /// or an error for malformed input.
  Result<std::string> Handle(uint64_t client_id, const std::string& wire);

  /// Ranks for `client_id` into `*out` using the service-owned scratch
  /// context (the zero-allocation serving path).
  void RankInto(uint64_t client_id, const VehicleState& state, size_t k,
                OfferingTable* out);

  /// Convenience for in-process callers: rank without serialization.
  OfferingTable Rank(uint64_t client_id, const VehicleState& state, size_t k);

  /// Ranks `state` with Dynamic Caching disabled: a fresh filter + score +
  /// refine pass whose result depends only on the state and the world —
  /// not on any per-client history. The fleet corridor cache ranks
  /// canonical anchor states through this path, so the stored table is
  /// identical no matter which vehicle, worker, or shard computed it.
  void RankFresh(const VehicleState& state, size_t k, OfferingTable* out);

  /// Ranks `state` against an externally owned Dynamic Cache state: the
  /// contents of `*cache` are swapped into a service-shared ranker for the
  /// duration of the call and swapped back out (both O(1), no allocation).
  /// The fleet runtime keeps each vehicle's caching state in a central
  /// store and carries it across shard handoffs through this call.
  void RankWithCache(const VehicleState& state, size_t k,
                     DynamicCacheState* cache, OfferingTable* out);

  /// Drops the cached state of every client idle since before `now`.
  void EvictIdleClients(SimTime now);

  /// Pre-grows the batched-refinement scratch to `refine_candidates`
  /// targets, so the first ranked query performs no refinement-phase
  /// allocations. The concurrent runtime calls this once per worker at
  /// startup with its configured refine limit.
  void ReserveBatchScratch(size_t refine_candidates) {
    ctx_.derouting.Reserve(refine_candidates);
  }

  /// Pre-grows the SoA candidate lanes to `candidates` slots, so the first
  /// ranked query's vectorized filter/score phase performs no allocations.
  /// The concurrent runtime calls this once per worker with its expected
  /// per-query candidate volume.
  void ReserveScoreLanes(size_t candidates) { ctx_.lanes.Reserve(candidates); }

  size_t active_clients() const { return clients_.size(); }
  const OfferingServiceStats& stats() const { return stats_; }

  /// The table most recently served by Handle() — the wire path's reply
  /// before encoding, so callers can account for flags (cache adaptation,
  /// degradation) that the encoded string hides. Valid until the next
  /// Handle() on this instance.
  const OfferingTable& reply_table() const { return table_; }

  /// Resolves the `pipeline.*` handles on `registry` and installs them on
  /// every client ranker — including ones created lazily later, so the
  /// attach order relative to client arrival doesn't matter. Null detaches.
  /// All clients (and, in the concurrent runtime, all sibling services)
  /// record into the same handles: the metrics describe the service, not
  /// one vehicle.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct ClientState {
    std::unique_ptr<EcoChargeRanker> ranker;
    SimTime last_seen = 0.0;
  };

  ClientState& ClientFor(uint64_t client_id);
  EcoChargeRanker& FreshRanker();
  EcoChargeRanker& SharedRanker();

  EcEstimator* estimator_;
  const SpatialIndex* charger_index_;
  ScoreWeights weights_;
  EcoChargeOptions options_;
  double client_ttl_s_;
  std::unordered_map<uint64_t, ClientState> clients_;
  std::unique_ptr<EcoChargeRanker> fresh_ranker_;   // Dynamic Caching off
  std::unique_ptr<EcoChargeRanker> shared_ranker_;  // external cache state
  OfferingServiceStats stats_;
  PipelineMetrics pipeline_metrics_;  // applied to every client ranker

  // Serving scratch, shared across clients (the service is single-threaded
  // per instance): pipeline buffers plus the reply table Handle() encodes.
  QueryContext ctx_;
  OfferingTable table_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_OFFERING_SERVICE_H_
