#include "core/protocol.h"

#include <sstream>

namespace ecocharge {

namespace {

/// Reads one expected keyword; fails with a uniform message otherwise.
Status Expect(std::istream& is, const std::string& keyword) {
  std::string token;
  if (!(is >> token) || token != keyword) {
    return Status::IOError("expected '" + keyword + "', got '" + token + "'");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeOfferingRequest(const OfferingRequest& request) {
  std::ostringstream os;
  os.precision(17);
  const VehicleState& s = request.state;
  os << "offering_request 1\n";
  os << "k " << request.k << "\n";
  os << "position " << s.position.x << " " << s.position.y << "\n";
  os << "node " << s.node << "\n";
  os << "time " << s.time << "\n";
  os << "return_a " << s.return_point_a.x << " " << s.return_point_a.y << " "
     << s.return_node_a << "\n";
  os << "return_b " << s.return_point_b.x << " " << s.return_point_b.y << " "
     << s.return_node_b << "\n";
  os << "window " << s.charge_window_s << "\n";
  os << "segment " << s.segment_index << "\n";
  os << "trip " << s.trip_id << "\n";
  os << "end\n";
  return os.str();
}

Result<OfferingRequest> DecodeOfferingRequest(const std::string& wire) {
  std::istringstream is(wire);
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "offering_request"));
  int version = 0;
  if (!(is >> version) || version != 1) {
    return Status::IOError("unsupported request version");
  }
  OfferingRequest request;
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "k"));
  if (!(is >> request.k)) return Status::IOError("bad k");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "position"));
  if (!(is >> request.state.position.x >> request.state.position.y)) {
    return Status::IOError("bad position");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "node"));
  if (!(is >> request.state.node)) return Status::IOError("bad node");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "time"));
  if (!(is >> request.state.time)) return Status::IOError("bad time");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "return_a"));
  if (!(is >> request.state.return_point_a.x >>
        request.state.return_point_a.y >> request.state.return_node_a)) {
    return Status::IOError("bad return_a");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "return_b"));
  if (!(is >> request.state.return_point_b.x >>
        request.state.return_point_b.y >> request.state.return_node_b)) {
    return Status::IOError("bad return_b");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "window"));
  if (!(is >> request.state.charge_window_s)) {
    return Status::IOError("bad window");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "segment"));
  if (!(is >> request.state.segment_index)) {
    return Status::IOError("bad segment");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "trip"));
  if (!(is >> request.state.trip_id)) return Status::IOError("bad trip");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "end"));
  return request;
}

std::string EncodeOfferingTable(const OfferingTable& table) {
  std::ostringstream os;
  os.precision(17);
  os << "offering_table 2\n";
  os << "generated_at " << table.generated_at << "\n";
  os << "location " << table.location.x << " " << table.location.y << "\n";
  os << "segment " << table.segment_index << "\n";
  os << "cached " << (table.adapted_from_cache ? 1 : 0) << "\n";
  os << "degraded " << (table.degraded ? 1 : 0) << "\n";
  os << "entries " << table.entries.size() << "\n";
  for (const OfferingEntry& e : table.entries) {
    os << "entry " << e.charger_id << " " << e.score.sc_min << " "
       << e.score.sc_max << " " << e.ecs.level.lo << " " << e.ecs.level.hi
       << " " << e.ecs.availability.lo << " " << e.ecs.availability.hi << " "
       << e.ecs.derouting.lo << " " << e.ecs.derouting.hi << " " << e.eta_s
       << " " << (e.ecs.degraded ? 1 : 0) << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<OfferingTable> DecodeOfferingTable(const std::string& wire) {
  std::istringstream is(wire);
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "offering_table"));
  // Version 2 added the degradation flags (table line + per-entry field);
  // version 1 tables decode with both flags false.
  int version = 0;
  if (!(is >> version) || version < 1 || version > 2) {
    return Status::IOError("unsupported table version");
  }
  OfferingTable table;
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "generated_at"));
  if (!(is >> table.generated_at)) return Status::IOError("bad timestamp");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "location"));
  if (!(is >> table.location.x >> table.location.y)) {
    return Status::IOError("bad location");
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "segment"));
  if (!(is >> table.segment_index)) return Status::IOError("bad segment");
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "cached"));
  int cached = 0;
  if (!(is >> cached)) return Status::IOError("bad cached flag");
  table.adapted_from_cache = cached != 0;
  if (version >= 2) {
    ECOCHARGE_RETURN_NOT_OK(Expect(is, "degraded"));
    int degraded = 0;
    if (!(is >> degraded)) return Status::IOError("bad degraded flag");
    table.degraded = degraded != 0;
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "entries"));
  size_t count = 0;
  if (!(is >> count)) return Status::IOError("bad entry count");
  for (size_t i = 0; i < count; ++i) {
    ECOCHARGE_RETURN_NOT_OK(Expect(is, "entry"));
    OfferingEntry e;
    double l_lo, l_hi, a_lo, a_hi, d_lo, d_hi;
    if (!(is >> e.charger_id >> e.score.sc_min >> e.score.sc_max >> l_lo >>
          l_hi >> a_lo >> a_hi >> d_lo >> d_hi >> e.eta_s)) {
      return Status::IOError("bad entry " + std::to_string(i));
    }
    if (version >= 2) {
      int entry_degraded = 0;
      if (!(is >> entry_degraded)) {
        return Status::IOError("bad entry degraded flag " + std::to_string(i));
      }
      e.ecs.degraded = entry_degraded != 0;
    }
    if (l_lo > l_hi || a_lo > a_hi || d_lo > d_hi) {
      return Status::IOError("unordered interval in entry " +
                             std::to_string(i));
    }
    e.ecs.level = Interval{l_lo, l_hi};
    e.ecs.availability = Interval{a_lo, a_hi};
    e.ecs.derouting = Interval{d_lo, d_hi};
    e.ecs.eta_s = e.eta_s;
    table.entries.push_back(e);
  }
  ECOCHARGE_RETURN_NOT_OK(Expect(is, "end"));
  return table;
}

}  // namespace ecocharge
