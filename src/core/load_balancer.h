#ifndef ECOCHARGE_CORE_LOAD_BALANCER_H_
#define ECOCHARGE_CORE_LOAD_BALANCER_H_

#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/ecocharge.h"

namespace ecocharge {

/// \brief Tuning of the fleet-level balancing extension.
struct LoadBalancerOptions {
  /// SC penalty per pending assignment on a (reference) 2-port site;
  /// sites with more ports absorb induced demand proportionally.
  double penalty_per_pending = 0.08;

  /// Cap so the penalty never dominates the objective entirely.
  double max_penalty = 0.5;
};

/// \brief Tracks which chargers recent Offering Tables have steered
/// vehicles toward, and converts that induced demand into a score penalty.
///
/// This implements the paper's future-work item: "investigate the balance
/// of the produced traffic to chargers by the suggested Offering Tables,
/// and monitor the congestion to redirect drivers to alternative EV
/// charging stations." Without it, every vehicle near the same sunny
/// DC site is sent there simultaneously, and most arrive to find it taken.
///
/// Thread safety: unlike the per-client ranker state, induced demand is
/// inherently global — every serving worker records into and reads from
/// the same assignment ledger — so all public methods synchronize on one
/// internal mutex (the tracked windows are small; a single lock is cheaper
/// than sharding here).
class ChargerLoadBalancer {
 public:
  explicit ChargerLoadBalancer(const LoadBalancerOptions& options = {});

  /// Records that a vehicle was directed to `charger` and is expected to
  /// occupy a port during [arrival, arrival + duration).
  void RecordAssignment(ChargerId charger, SimTime arrival,
                        double duration_s);

  /// Number of assignments whose occupancy window covers `t`.
  size_t PendingAt(ChargerId charger, SimTime t) const;

  /// SC penalty for `charger` at time `t` given `num_ports`.
  double Penalty(ChargerId charger, SimTime t, int num_ports) const;

  /// Drops assignments that ended before `t` (call periodically).
  void ExpireBefore(SimTime t);

  void Clear();
  size_t total_assignments() const;

 private:
  struct Window {
    SimTime start;
    SimTime end;
  };

  size_t PendingAtLocked(ChargerId charger, SimTime t) const;

  LoadBalancerOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<ChargerId, std::deque<Window>> pending_;
  size_t total_assignments_ = 0;
};

/// \brief EcoCharge with induced-demand awareness: ranks like EcoCharge,
/// then re-sorts the Offering Table by penalty-adjusted score and records
/// the top pick as an assignment (assuming the driver follows the top
/// recommendation).
class BalancedEcoChargeRanker : public Ranker {
 public:
  BalancedEcoChargeRanker(EcEstimator* estimator,
                          const SpatialIndex* charger_index,
                          const ScoreWeights& weights,
                          const EcoChargeOptions& eco_options,
                          const LoadBalancerOptions& balancer_options = {});

  std::string_view name() const override { return "EcoCharge-Balanced"; }
  void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                OfferingTable* out) override;
  void Reset() override;

  const ChargerLoadBalancer& balancer() const { return balancer_; }

 private:
  EcEstimator* estimator_;
  EcoChargeRanker inner_;
  ChargerLoadBalancer balancer_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_LOAD_BALANCER_H_
