#include "core/evaluation.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/baselines.h"

namespace ecocharge {

Evaluator::Evaluator(EcEstimator* estimator, const ScoreWeights& weights)
    : estimator_(estimator), weights_(weights) {}

void Evaluator::SetWorkload(std::vector<VehicleState> states) {
  states_ = std::move(states);
  oracle_ready_ = false;
  oracle_sums_.clear();
}

double Evaluator::TrueSumOf(const VehicleState& state,
                            const OfferingTable& table) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  double sum = 0.0;
  for (const OfferingEntry& e : table.entries) {
    if (e.charger_id >= fleet.size()) continue;
    sum += estimator_->ReferenceScore(state, fleet[e.charger_id], weights_);
  }
  return sum;
}

void Evaluator::ComputeOracle(size_t k) {
  if (oracle_ready_ && oracle_k_ == k) return;
  BruteForceRanker oracle(estimator_, weights_);
  oracle_sums_.clear();
  oracle_sums_.reserve(states_.size());
  for (const VehicleState& state : states_) {
    OfferingTable best = oracle.Rank(state, k);
    oracle_sums_.push_back(TrueSumOf(state, best));
  }
  oracle_k_ = k;
  oracle_ready_ = true;
}

const std::vector<double>& Evaluator::OracleScores(size_t k) {
  ComputeOracle(k);
  return oracle_sums_;
}

MethodEvaluation Evaluator::Evaluate(Ranker& ranker, size_t k,
                                     int repetitions) {
  ComputeOracle(k);
  MethodEvaluation eval;
  eval.method = std::string(ranker.name());
  eval.num_queries = states_.size();

  // One context and table reused across the whole run, so the timed
  // region measures steady-state generation (no per-query allocations).
  QueryContext ctx;
  OfferingTable table;
  for (int rep = 0; rep < repetitions; ++rep) {
    ranker.Reset();
    for (size_t i = 0; i < states_.size(); ++i) {
      const VehicleState& state = states_[i];
      Stopwatch timer;
      ranker.RankInto(state, k, ctx, &table);
      eval.ft_ms.Add(timer.ElapsedMillis());

      double truth = TrueSumOf(state, table);
      double oracle = oracle_sums_[i];
      double pct = oracle > 0.0 ? 100.0 * truth / oracle : 100.0;
      // Floating-point jitter can push an exact tie a hair above 100.
      eval.sc_percent.Add(std::min(pct, 100.0));
    }
  }
  return eval;
}

}  // namespace ecocharge
