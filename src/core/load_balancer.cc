#include "core/load_balancer.h"

#include <algorithm>
#include <mutex>

namespace ecocharge {

ChargerLoadBalancer::ChargerLoadBalancer(const LoadBalancerOptions& options)
    : options_(options) {}

void ChargerLoadBalancer::RecordAssignment(ChargerId charger, SimTime arrival,
                                           double duration_s) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[charger].push_back({arrival, arrival + duration_s});
  ++total_assignments_;
}

size_t ChargerLoadBalancer::PendingAtLocked(ChargerId charger,
                                            SimTime t) const {
  auto it = pending_.find(charger);
  if (it == pending_.end()) return 0;
  size_t count = 0;
  for (const Window& w : it->second) {
    if (t >= w.start && t < w.end) ++count;
  }
  return count;
}

size_t ChargerLoadBalancer::PendingAt(ChargerId charger, SimTime t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PendingAtLocked(charger, t);
}

double ChargerLoadBalancer::Penalty(ChargerId charger, SimTime t,
                                    int num_ports) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pending = PendingAtLocked(charger, t);
  if (pending == 0) return 0.0;
  // penalty_per_pending is calibrated for a 2-port site; sites with more
  // ports absorb induced demand proportionally.
  double per_site = options_.penalty_per_pending *
                    static_cast<double>(pending) * 2.0 /
                    std::max(1, num_ports);
  return std::min(options_.max_penalty, per_site);
}

void ChargerLoadBalancer::ExpireBefore(SimTime t) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [charger, windows] : pending_) {
    while (!windows.empty() && windows.front().end <= t) {
      windows.pop_front();
    }
  }
}

void ChargerLoadBalancer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  total_assignments_ = 0;
}

size_t ChargerLoadBalancer::total_assignments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_assignments_;
}

BalancedEcoChargeRanker::BalancedEcoChargeRanker(
    EcEstimator* estimator, const SpatialIndex* charger_index,
    const ScoreWeights& weights, const EcoChargeOptions& eco_options,
    const LoadBalancerOptions& balancer_options)
    : estimator_(estimator),
      inner_(estimator, charger_index, weights, eco_options),
      balancer_(balancer_options) {}

void BalancedEcoChargeRanker::RankInto(const VehicleState& state, size_t k,
                                       QueryContext& ctx,
                                       OfferingTable* out) {
  // Ask the inner ranker for a deeper table so penalized leaders can be
  // displaced by clean alternatives rather than just reshuffled.
  inner_.RankInto(state, std::max(k * 2, k + 2), ctx, out);
  const std::vector<EvCharger>& fleet = estimator_->fleet();

  for (OfferingEntry& e : out->entries) {
    if (e.charger_id >= fleet.size()) continue;
    SimTime arrival = state.time + e.eta_s;
    double penalty = balancer_.Penalty(e.charger_id, arrival,
                                       fleet[e.charger_id].num_ports);
    e.score.sc_min -= penalty;
    e.score.sc_max -= penalty;
  }
  SortOfferingEntries(out->entries);
  if (out->entries.size() > k) out->entries.resize(k);

  if (!out->empty()) {
    const OfferingEntry& top = out->top();
    balancer_.RecordAssignment(top.charger_id, state.time + top.eta_s,
                               state.charge_window_s);
  }
  balancer_.ExpireBefore(state.time - kSecondsPerDay);
}

void BalancedEcoChargeRanker::Reset() {
  inner_.Reset();
  balancer_.Clear();
}

}  // namespace ecocharge
