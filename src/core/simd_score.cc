#include "core/simd_score.h"

#include <algorithm>

#if defined(ECOCHARGE_SIMD_AVX2)
#include <immintrin.h>
#elif defined(ECOCHARGE_SIMD_SSE2)
#include <emmintrin.h>
#elif defined(ECOCHARGE_SIMD_NEON)
#include <arm_neon.h>
#endif

// This translation unit (like score.cc and cknn_ec.cc) is compiled with FP
// contraction disabled, so every kernel below performs exactly the IEEE
// multiply/add sequence the scalar reference spells out — the bit-parity
// contract of DESIGN.md §15 depends on neither side fusing into FMA.

namespace ecocharge {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels: the parity oracle. These are the semantics; the
// vector bodies below must reproduce them bit for bit (NaN lanes: same
// mask/ordering decisions; payload bits may differ, which the property test
// accounts for).
// ---------------------------------------------------------------------------

void ScoreIntervalsScalar(const double* level_lo, const double* level_hi,
                          const double* avail_lo, const double* avail_hi,
                          const double* der_lo, const double* der_hi,
                          size_t n, const ScoreWeights& w, double* sc_min,
                          double* sc_max) {
  for (size_t i = 0; i < n; ++i) {
    sc_min[i] = level_lo[i] * w.w_level + avail_lo[i] * w.w_availability +
                (1.0 - der_lo[i]) * w.w_derouting;
    sc_max[i] = level_hi[i] * w.w_level + avail_hi[i] * w.w_availability +
                (1.0 - der_hi[i]) * w.w_derouting;
  }
}

void MidpointsScalar(const double* sc_min, const double* sc_max, size_t n,
                     double* mid) {
  // (a + b) * 0.5 is bit-identical to ScorePair::Mid()'s (a + b) / 2.0:
  // both are a single correctly-rounded scaling by a power of two.
  for (size_t i = 0; i < n; ++i) mid[i] = (sc_min[i] + sc_max[i]) * 0.5;
}

void LeMaskScalar(const double* values, double bound, size_t n,
                  uint8_t* mask) {
  // NaN <= bound is false, so NaN lanes prune — identical to the vector
  // compare, whose unordered lanes yield a zero mask.
  for (size_t i = 0; i < n; ++i) mask[i] = values[i] <= bound ? 1 : 0;
}

void DescendingKeysScalar(const double* values, size_t n, uint64_t* keys) {
  for (size_t i = 0; i < n; ++i) keys[i] = DescendingKey(values[i]);
}

// ---------------------------------------------------------------------------
// Vector kernels.
// ---------------------------------------------------------------------------

#if defined(ECOCHARGE_SIMD_AVX2)

void ScoreIntervals(const double* level_lo, const double* level_hi,
                    const double* avail_lo, const double* avail_hi,
                    const double* der_lo, const double* der_hi, size_t n,
                    const ScoreWeights& w, double* sc_min, double* sc_max) {
  const __m256d w1 = _mm256_set1_pd(w.w_level);
  const __m256d w2 = _mm256_set1_pd(w.w_availability);
  const __m256d w3 = _mm256_set1_pd(w.w_derouting);
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d lmin = _mm256_mul_pd(_mm256_loadu_pd(level_lo + i), w1);
    const __m256d amin = _mm256_mul_pd(_mm256_loadu_pd(avail_lo + i), w2);
    const __m256d dmin = _mm256_mul_pd(
        _mm256_sub_pd(one, _mm256_loadu_pd(der_lo + i)), w3);
    _mm256_storeu_pd(sc_min + i,
                     _mm256_add_pd(_mm256_add_pd(lmin, amin), dmin));
    const __m256d lmax = _mm256_mul_pd(_mm256_loadu_pd(level_hi + i), w1);
    const __m256d amax = _mm256_mul_pd(_mm256_loadu_pd(avail_hi + i), w2);
    const __m256d dmax = _mm256_mul_pd(
        _mm256_sub_pd(one, _mm256_loadu_pd(der_hi + i)), w3);
    _mm256_storeu_pd(sc_max + i,
                     _mm256_add_pd(_mm256_add_pd(lmax, amax), dmax));
  }
  ScoreIntervalsScalar(level_lo + i, level_hi + i, avail_lo + i, avail_hi + i,
                       der_lo + i, der_hi + i, n - i, w, sc_min + i,
                       sc_max + i);
}

void Midpoints(const double* sc_min, const double* sc_max, size_t n,
               double* mid) {
  const __m256d half = _mm256_set1_pd(0.5);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(sc_min + i),
                                      _mm256_loadu_pd(sc_max + i));
    _mm256_storeu_pd(mid + i, _mm256_mul_pd(sum, half));
  }
  MidpointsScalar(sc_min + i, sc_max + i, n - i, mid + i);
}

void LeMask(const double* values, double bound, size_t n, uint8_t* mask) {
  const __m256d b = _mm256_set1_pd(bound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // CMP_LE_OQ: ordered less-equal, NaN lanes produce 0 — matches scalar.
    const __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(values + i), b,
                                      _CMP_LE_OQ);
    const int bits = _mm256_movemask_pd(cmp);
    mask[i + 0] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    mask[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    mask[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  LeMaskScalar(values + i, bound, n - i, mask + i);
}

void DescendingKeys(const double* values, size_t n, uint64_t* keys) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000000000000000ull));
  const __m256i mant = _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll);
  const __m256i inf = _mm256_set1_epi64x(0x7FF0000000000000ll);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i bits = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + i));
    // neg = all-ones where the sign bit is set (signed compare vs 0).
    const __m256i neg = _mm256_cmpgt_epi64(zero, bits);
    const __m256i flip = _mm256_or_si256(sign, _mm256_and_si256(neg, mant));
    __m256i key = _mm256_xor_si256(bits, flip);
    // NaN iff (bits & 0x7FF..F) > 0x7FF0'...'0000; the masked value is
    // non-negative, so the signed compare is exact. NaN keys clamp to 0.
    const __m256i mag = _mm256_and_si256(bits, mant);
    const __m256i is_nan = _mm256_cmpgt_epi64(mag, inf);
    key = _mm256_andnot_si256(is_nan, key);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), key);
  }
  DescendingKeysScalar(values + i, n - i, keys + i);
}

#elif defined(ECOCHARGE_SIMD_SSE2)

void ScoreIntervals(const double* level_lo, const double* level_hi,
                    const double* avail_lo, const double* avail_hi,
                    const double* der_lo, const double* der_hi, size_t n,
                    const ScoreWeights& w, double* sc_min, double* sc_max) {
  const __m128d w1 = _mm_set1_pd(w.w_level);
  const __m128d w2 = _mm_set1_pd(w.w_availability);
  const __m128d w3 = _mm_set1_pd(w.w_derouting);
  const __m128d one = _mm_set1_pd(1.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d lmin = _mm_mul_pd(_mm_loadu_pd(level_lo + i), w1);
    const __m128d amin = _mm_mul_pd(_mm_loadu_pd(avail_lo + i), w2);
    const __m128d dmin =
        _mm_mul_pd(_mm_sub_pd(one, _mm_loadu_pd(der_lo + i)), w3);
    _mm_storeu_pd(sc_min + i, _mm_add_pd(_mm_add_pd(lmin, amin), dmin));
    const __m128d lmax = _mm_mul_pd(_mm_loadu_pd(level_hi + i), w1);
    const __m128d amax = _mm_mul_pd(_mm_loadu_pd(avail_hi + i), w2);
    const __m128d dmax =
        _mm_mul_pd(_mm_sub_pd(one, _mm_loadu_pd(der_hi + i)), w3);
    _mm_storeu_pd(sc_max + i, _mm_add_pd(_mm_add_pd(lmax, amax), dmax));
  }
  ScoreIntervalsScalar(level_lo + i, level_hi + i, avail_lo + i, avail_hi + i,
                       der_lo + i, der_hi + i, n - i, w, sc_min + i,
                       sc_max + i);
}

void Midpoints(const double* sc_min, const double* sc_max, size_t n,
               double* mid) {
  const __m128d half = _mm_set1_pd(0.5);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d sum =
        _mm_add_pd(_mm_loadu_pd(sc_min + i), _mm_loadu_pd(sc_max + i));
    _mm_storeu_pd(mid + i, _mm_mul_pd(sum, half));
  }
  MidpointsScalar(sc_min + i, sc_max + i, n - i, mid + i);
}

void LeMask(const double* values, double bound, size_t n, uint8_t* mask) {
  const __m128d b = _mm_set1_pd(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // cmple: ordered less-equal, NaN lanes produce 0 — matches scalar.
    const int bits = _mm_movemask_pd(_mm_cmple_pd(_mm_loadu_pd(values + i), b));
    mask[i + 0] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  LeMaskScalar(values + i, bound, n - i, mask + i);
}

void DescendingKeys(const double* values, size_t n, uint64_t* keys) {
  // SSE2 has no 64-bit integer compare; the scalar key transform is already
  // a handful of ALU ops, so the bulk form just loops it. The scoring and
  // masking kernels above carry the vector win on this ISA.
  DescendingKeysScalar(values, n, keys);
}

#elif defined(ECOCHARGE_SIMD_NEON)

void ScoreIntervals(const double* level_lo, const double* level_hi,
                    const double* avail_lo, const double* avail_hi,
                    const double* der_lo, const double* der_hi, size_t n,
                    const ScoreWeights& w, double* sc_min, double* sc_max) {
  const float64x2_t w1 = vdupq_n_f64(w.w_level);
  const float64x2_t w2 = vdupq_n_f64(w.w_availability);
  const float64x2_t w3 = vdupq_n_f64(w.w_derouting);
  const float64x2_t one = vdupq_n_f64(1.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t lmin = vmulq_f64(vld1q_f64(level_lo + i), w1);
    const float64x2_t amin = vmulq_f64(vld1q_f64(avail_lo + i), w2);
    const float64x2_t dmin =
        vmulq_f64(vsubq_f64(one, vld1q_f64(der_lo + i)), w3);
    vst1q_f64(sc_min + i, vaddq_f64(vaddq_f64(lmin, amin), dmin));
    const float64x2_t lmax = vmulq_f64(vld1q_f64(level_hi + i), w1);
    const float64x2_t amax = vmulq_f64(vld1q_f64(avail_hi + i), w2);
    const float64x2_t dmax =
        vmulq_f64(vsubq_f64(one, vld1q_f64(der_hi + i)), w3);
    vst1q_f64(sc_max + i, vaddq_f64(vaddq_f64(lmax, amax), dmax));
  }
  ScoreIntervalsScalar(level_lo + i, level_hi + i, avail_lo + i, avail_hi + i,
                       der_lo + i, der_hi + i, n - i, w, sc_min + i,
                       sc_max + i);
}

void Midpoints(const double* sc_min, const double* sc_max, size_t n,
               double* mid) {
  const float64x2_t half = vdupq_n_f64(0.5);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t sum =
        vaddq_f64(vld1q_f64(sc_min + i), vld1q_f64(sc_max + i));
    vst1q_f64(mid + i, vmulq_f64(sum, half));
  }
  MidpointsScalar(sc_min + i, sc_max + i, n - i, mid + i);
}

void LeMask(const double* values, double bound, size_t n, uint8_t* mask) {
  const float64x2_t b = vdupq_n_f64(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t cmp = vcleq_f64(vld1q_f64(values + i), b);
    mask[i + 0] = static_cast<uint8_t>(vgetq_lane_u64(cmp, 0) & 1);
    mask[i + 1] = static_cast<uint8_t>(vgetq_lane_u64(cmp, 1) & 1);
  }
  LeMaskScalar(values + i, bound, n - i, mask + i);
}

void DescendingKeys(const double* values, size_t n, uint64_t* keys) {
  DescendingKeysScalar(values, n, keys);
}

#else  // ECOCHARGE_SIMD_SCALAR

void ScoreIntervals(const double* level_lo, const double* level_hi,
                    const double* avail_lo, const double* avail_hi,
                    const double* der_lo, const double* der_hi, size_t n,
                    const ScoreWeights& w, double* sc_min, double* sc_max) {
  ScoreIntervalsScalar(level_lo, level_hi, avail_lo, avail_hi, der_lo, der_hi,
                       n, w, sc_min, sc_max);
}

void Midpoints(const double* sc_min, const double* sc_max, size_t n,
               double* mid) {
  MidpointsScalar(sc_min, sc_max, n, mid);
}

void LeMask(const double* values, double bound, size_t n, uint8_t* mask) {
  LeMaskScalar(values, bound, n, mask);
}

void DescendingKeys(const double* values, size_t n, uint64_t* keys) {
  DescendingKeysScalar(values, n, keys);
}

#endif

// ---------------------------------------------------------------------------
// Partial selection. Both the scalar and the SIMD pipeline rank through
// these — ordering parity between the two is by construction, not by test.
// ---------------------------------------------------------------------------

namespace {

/// (key desc, tiebreak asc): a strict total order on slots — uint64 keys
/// carry no NaN, and the tiebreak lane is unique per slot. Null tiebreak
/// ties by the slot index itself.
struct DescendingSlotLess {
  const uint64_t* keys;
  const uint32_t* tiebreak;
  bool operator()(uint32_t a, uint32_t b) const {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return (tiebreak ? tiebreak[a] : a) < (tiebreak ? tiebreak[b] : b);
  }
};

struct AscendingSlotLess {
  const uint64_t* keys;
  const uint32_t* tiebreak;
  bool operator()(uint32_t a, uint32_t b) const {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return (tiebreak ? tiebreak[a] : a) < (tiebreak ? tiebreak[b] : b);
  }
};

template <typename Less>
void PartialSelect(uint32_t* idx, size_t n, size_t m, Less less) {
  if (m == 0 || n == 0) return;
  if (m < n) {
    // nth_element partitions in O(n); only the selected prefix then pays
    // for ordering. The total order makes the prefix *set and order*
    // identical to full-sort-then-truncate.
    std::nth_element(idx, idx + (m - 1), idx + n, less);
    std::sort(idx, idx + m, less);
  } else {
    std::sort(idx, idx + n, less);
  }
}

}  // namespace

void PartialSelectDescending(const uint64_t* keys, const uint32_t* tiebreak,
                             uint32_t* idx, size_t n, size_t m) {
  PartialSelect(idx, n, m, DescendingSlotLess{keys, tiebreak});
}

void PartialSelectAscending(const uint64_t* keys, const uint32_t* tiebreak,
                            uint32_t* idx, size_t n, size_t m) {
  PartialSelect(idx, n, m, AscendingSlotLess{keys, tiebreak});
}

}  // namespace simd
}  // namespace ecocharge
