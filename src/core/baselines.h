#ifndef ECOCHARGE_CORE_BASELINES_H_
#define ECOCHARGE_CORE_BASELINES_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/ec_estimator.h"
#include "core/ranker.h"
#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief The paper's Brute-Force baseline: exhaustively evaluates the
/// exact (realized) SC of every charger in B and returns the true top-k.
///
/// By construction it attains SC = 100%; its cost — one network-exact
/// derouting computation per charger per query — makes it the slowest
/// method, as in the paper.
class BruteForceRanker : public Ranker {
 public:
  BruteForceRanker(EcEstimator* estimator, const ScoreWeights& weights);

  std::string_view name() const override { return "Brute-Force"; }
  void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                OfferingTable* out) override;

 private:
  EcEstimator* estimator_;
  ScoreWeights weights_;
};

/// \brief The Index-Quadtree baseline: uses a spatial index to retrieve
/// the nearest `candidate_budget` chargers, evaluates the exact SC only
/// for those, and returns their top-k. (The paper builds it on a
/// quadtree; any SpatialIndex backend produces the same candidates.)
///
/// Faster than Brute-Force (it prices O(log n) retrieval plus a bounded
/// candidate evaluation), but it can miss high-L/A chargers slightly
/// farther away — the SC gap the paper reports (~80-85%).
class QuadtreeRanker : public Ranker {
 public:
  /// \param charger_index index over fleet positions (ids = fleet index)
  /// \param candidate_budget how many spatial NNs are exactly evaluated
  QuadtreeRanker(EcEstimator* estimator, const SpatialIndex* charger_index,
                 const ScoreWeights& weights, size_t candidate_budget = 24);

  std::string_view name() const override { return "Index-Quadtree"; }
  void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                OfferingTable* out) override;

 private:
  EcEstimator* estimator_;
  const SpatialIndex* charger_index_;
  ScoreWeights weights_;
  size_t candidate_budget_;
};

/// \brief The Random baseline: k uniform picks among the chargers within
/// radius R, ignoring every objective.
class RandomRanker : public Ranker {
 public:
  RandomRanker(EcEstimator* estimator, const SpatialIndex* charger_index,
               double radius_m, uint64_t seed);

  std::string_view name() const override { return "Random"; }
  void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                OfferingTable* out) override;
  void Reset() override { rng_ = Rng(seed_); }

 private:
  EcEstimator* estimator_;
  const SpatialIndex* charger_index_;
  double radius_m_;
  uint64_t seed_;
  Rng rng_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_BASELINES_H_
