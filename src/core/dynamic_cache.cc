#include "core/dynamic_cache.h"

namespace ecocharge {

DynamicCache::DynamicCache(const DynamicCacheOptions& options)
    : options_(options) {}

const std::vector<ScoredCandidate>* DynamicCache::TryReuse(
    const Point& position, SimTime now) {
  if (!solution_.has_value()) {
    ++misses_;
    return nullptr;
  }
  bool moved_too_far =
      Distance(position, solution_->anchor) > options_.q_distance_m;
  bool stale = now - solution_->stored_at > options_.ttl_s || now <
                   solution_->stored_at;
  if (moved_too_far || stale) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &solution_->candidates;
}

void DynamicCache::Store(const Point& position, SimTime now,
                         const std::vector<ScoredCandidate>& candidates) {
  if (!solution_.has_value()) solution_.emplace();
  solution_->anchor = position;
  solution_->stored_at = now;
  solution_->candidates.assign(candidates.begin(), candidates.end());
}

void DynamicCache::Clear() { solution_.reset(); }

}  // namespace ecocharge
