#include "core/dynamic_cache.h"

#include <utility>

namespace ecocharge {

DynamicCache::DynamicCache(const DynamicCacheOptions& options)
    : options_(options) {}

const std::vector<ScoredCandidate>* DynamicCache::TryReuse(
    const Point& position, SimTime now) {
  if (!state_.has_solution) {
    ++state_.misses;
    return nullptr;
  }
  bool moved_too_far =
      Distance(position, state_.anchor) > options_.q_distance_m;
  bool stale =
      now - state_.stored_at > options_.ttl_s || now < state_.stored_at;
  if (moved_too_far || stale) {
    ++state_.misses;
    return nullptr;
  }
  ++state_.hits;
  return &state_.candidates;
}

void DynamicCache::Store(const Point& position, SimTime now,
                         const std::vector<ScoredCandidate>& candidates) {
  state_.has_solution = true;
  state_.anchor = position;
  state_.stored_at = now;
  state_.candidates.assign(candidates.begin(), candidates.end());
}

void DynamicCache::Clear() {
  state_.has_solution = false;
  state_.candidates.clear();
}

void DynamicCache::SwapState(DynamicCacheState* state) {
  std::swap(state_, *state);
}

}  // namespace ecocharge
