#ifndef ECOCHARGE_CORE_SCORE_H_
#define ECOCHARGE_CORE_SCORE_H_

#include <string_view>

#include "common/status.h"
#include "core/interval.h"

namespace ecocharge {

/// \brief Weights of the SC weighted-sum objective (user-configurable;
/// Section III-B). w1 scales the sustainable charging level L, w2 the
/// availability A, w3 the derouting cost D.
struct ScoreWeights {
  double w_level = 1.0 / 3.0;
  double w_availability = 1.0 / 3.0;
  double w_derouting = 1.0 / 3.0;

  /// The paper's four ablation distance functions (Section V-E).
  static ScoreWeights AWE() { return {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}; }
  static ScoreWeights OSC() { return {1.0, 0.0, 0.0}; }
  static ScoreWeights OA() { return {0.0, 1.0, 0.0}; }
  static ScoreWeights ODC() { return {0.0, 0.0, 1.0}; }

  /// Weights must be non-negative and sum to 1 (within 1e-9).
  Status Validate() const;
};

/// \brief Normalized estimated components of one charger: all in [0, 1].
/// level/availability: higher is better; derouting: lower is better.
struct EcIntervals {
  Interval level;         ///< L, normalized clean-energy offer
  Interval availability;  ///< A, free-port fraction
  Interval derouting;     ///< D, normalized extra travel cost
  double eta_s = 0.0;     ///< estimated arrival time offset, seconds
  bool degraded = false;  ///< any component built from a stale/widened fetch
};

/// \brief The two rankings scores of eqs. (4) and (5).
///
/// Note the paper's construction: sc_min combines the *lower* estimates of
/// L and A with the *lower* (optimistic) estimate of D, so sc_min is not a
/// lower bound of sc_max — they are two rankings whose intersection (eq. 6)
/// keeps chargers that score well under both estimate sets.
struct ScorePair {
  double sc_min = 0.0;
  double sc_max = 0.0;

  double Mid() const { return (sc_min + sc_max) / 2.0; }
};

/// Eq. (4)/(5): SC_min = L_min*w1 + A_min*w2 + (1-D_min)*w3, and the max
/// analogue.
ScorePair ComputeScorePair(const EcIntervals& ecs, const ScoreWeights& w);

/// The exact score for known (non-interval) components:
/// SC = L*w1 + A*w2 + (1-D)*w3. Inputs must already be normalized.
double ComputeExactScore(double level, double availability, double derouting,
                         const ScoreWeights& w);

/// Rigorous enclosure of the score over all EC realizations: lower end uses
/// pessimistic L, A and pessimistic (large) D; upper end the reverse.
/// Provided alongside the paper-faithful ScorePair for display/tests.
Interval ComputeScoreEnclosure(const EcIntervals& ecs, const ScoreWeights& w);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_SCORE_H_
