#ifndef ECOCHARGE_CORE_WORKLOAD_H_
#define ECOCHARGE_CORE_WORKLOAD_H_

#include <vector>

#include "core/vehicle_state.h"
#include "traj/dataset.h"

namespace ecocharge {

/// \brief How trajectories become per-segment query points.
struct WorkloadOptions {
  double segment_length_m = 4000.0;        ///< Step 1's ~3-5 km segments
  double charge_window_s = kSecondsPerHour;  ///< idle time per stop
  size_t max_trips = 50;     ///< trajectories sampled from the dataset
  size_t max_states = 400;   ///< cap on total vehicle states
  uint64_t seed = 123;       ///< trip sampling seed
};

/// Vehicle states of one trip: one per segment boundary, each carrying the
/// segment-end return points the derouting cost needs.
std::vector<VehicleState> TripStates(const RoadNetwork& network,
                                     const Trajectory& trajectory,
                                     double segment_length_m,
                                     double charge_window_s);

/// Samples trips from `dataset` and concatenates their states (bounded by
/// WorkloadOptions::max_states). Deterministic in the options' seed.
std::vector<VehicleState> BuildWorkload(const Dataset& dataset,
                                        const WorkloadOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_WORKLOAD_H_
