#ifndef ECOCHARGE_CORE_FLEET_SIM_H_
#define ECOCHARGE_CORE_FLEET_SIM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/environment.h"
#include "core/ranker.h"
#include "core/workload.h"
#include "energy/ev.h"

namespace ecocharge {

/// \brief One simulated vehicle: its battery plus an itinerary of trips
/// with idle windows between them.
struct FleetVehicle {
  uint64_t id = 0;
  EvClass ev_class = EvClass::kSedan;
  double initial_soc = 0.7;
  const Trajectory* trajectory = nullptr;  ///< not owned
};

/// \brief Per-vehicle outcome of the fleet simulation.
struct VehicleOutcome {
  uint64_t vehicle_id = 0;
  double end_soc = 0.0;
  double clean_energy_kwh = 0.0;   ///< hoarded from solar excess
  double derouting_km = 0.0;       ///< extra driving caused by charging stops
  double driving_energy_kwh = 0.0;
  int charge_stops = 0;
  int failed_stops = 0;            ///< arrived at a fully occupied site
  bool stranded = false;           ///< battery hit empty mid-trip
};

/// \brief Fleet-level aggregates.
struct FleetOutcome {
  std::vector<VehicleOutcome> vehicles;
  double total_clean_kwh = 0.0;
  double total_derouting_km = 0.0;
  double total_driving_kwh = 0.0;
  int total_stops = 0;
  int total_failed_stops = 0;
  int stranded_vehicles = 0;

  /// Grid CO2 displaced by hoarded solar energy, kg (EU-average grid
  /// intensity ~0.25 kg CO2e per kWh).
  double Co2AvoidedKg() const { return total_clean_kwh * 0.25; }
};

/// \brief Simulation knobs.
struct FleetSimOptions {
  size_t k = 3;
  double segment_length_m = 4000.0;
  double idle_window_s = 45.0 * kSecondsPerMinute;  ///< idle time per stop
  double stop_probability = 0.4;   ///< chance a vehicle charges per segment
  double min_soc_to_skip = 0.85;   ///< full-enough vehicles skip stops
  uint64_t seed = 77;
};

/// \brief Drives a whole fleet through its trajectories, letting each
/// vehicle follow the ranker's top offer during idle windows and
/// simulating the resulting charging sessions against the realized solar,
/// availability, and traffic ground truth.
///
/// This is the intro's renewable-hoarding scenario made executable: it
/// quantifies, in kWh and kg of CO2, what the CkNN-EC ranking buys over a
/// policy like "always plug in at the nearest charger".
class FleetSimulator {
 public:
  FleetSimulator(Environment* env, const FleetSimOptions& options);

  /// Builds a fleet over the environment's trajectories (round-robin EV
  /// classes, randomized initial state of charge).
  std::vector<FleetVehicle> MakeFleet(size_t max_vehicles);

  /// Runs the fleet with `ranker` deciding where to charge.
  FleetOutcome Run(const std::vector<FleetVehicle>& fleet, Ranker& ranker);

 private:
  VehicleOutcome RunVehicle(const FleetVehicle& vehicle, Ranker& ranker);

  Environment* env_;
  FleetSimOptions options_;
  Rng rng_;
  QueryContext ctx_;      ///< ranking scratch reused across the whole fleet
  OfferingTable table_;   ///< reused offer table (only the top is read)
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_FLEET_SIM_H_
