#ifndef ECOCHARGE_CORE_SPLIT_POINTS_H_
#define ECOCHARGE_CORE_SPLIT_POINTS_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace ecocharge {

/// \brief One maximal sub-interval of a path segment sharing a single
/// nearest neighbor (the <b, p> pairs of the paper's CkNN result; interval
/// endpoints are the split points SL of Tao et al.).
struct SplitInterval {
  double start_t = 0.0;  ///< parametric start in [0, 1] along the segment
  double end_t = 1.0;    ///< parametric end
  uint32_t site = 0;     ///< index of the nearest site on this interval
};

/// \brief Exact continuous 1-NN along the segment a->b.
///
/// Because all squared site distances share the same quadratic term in the
/// segment parameter t, pairwise comparisons are linear in t and the
/// nearest site over t is the lower envelope of n lines — computed by a
/// left-to-right sweep in O(n) per split point. Empty input yields an
/// empty result.
std::vector<SplitInterval> ContinuousNearestNeighbor(
    const Point& a, const Point& b, const std::vector<Point>& sites);

/// \brief Approximate continuous kNN: samples the segment at `samples`
/// evenly spaced points, computes the exact kNN set at each, and merges
/// runs with identical (unordered) kNN sets. Used where the full
/// order-k Voronoi sweep is overkill.
struct KnnSplitInterval {
  double start_t = 0.0;
  double end_t = 1.0;
  std::vector<uint32_t> sites;  ///< the kNN set, sorted ascending
};

std::vector<KnnSplitInterval> SampledContinuousKnn(
    const Point& a, const Point& b, const std::vector<Point>& sites,
    size_t k, size_t samples = 64);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_SPLIT_POINTS_H_
