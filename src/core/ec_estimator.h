#ifndef ECOCHARGE_CORE_EC_ESTIMATOR_H_
#define ECOCHARGE_CORE_EC_ESTIMATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "availability/availability_service.h"
#include "core/score.h"
#include "core/vehicle_state.h"
#include "eis/information_server.h"
#include "energy/production.h"
#include "traffic/derouting.h"

namespace ecocharge {

/// \brief Knobs of the EC normalization.
struct EcEstimatorOptions {
  /// Normalization constant for D: the "environment's maximum derouting
  /// distance" of Eq. 3's discussion. Callers typically set it to 2R.
  double max_derouting_m = 100000.0;

  /// Time bucket for exact derouting costs (see
  /// DeroutingService::set_exact_time_bucket_s): > 0 quantizes the exact
  /// cost time so the backward-sweep warm-start memo survives across the
  /// recomputation points of a continuous query, invalidating only at
  /// bucket boundaries. 0 (default) evaluates at each query's exact time.
  double exact_derouting_bucket_s = 0.0;

  /// When non-null, exact derouting runs on the contraction-hierarchy
  /// backend (DeroutingBackend::kCh) instead of the Dijkstra sweeps. The
  /// hierarchy must be built over the estimator's network and outlive it
  /// (not owned).
  const ChIndex* ch = nullptr;

  /// Process-shared customization cache (not owned, must outlive the
  /// estimator; only meaningful with `ch`). Workers built from the same
  /// options share planes instead of each re-pricing every congestion
  /// bucket.
  ChCustomizationCache* ch_cache = nullptr;

  /// Sweep parallelism of the private customizer when no cache is attached
  /// (0 = serial seed path); forwarded to DeroutingService::set_ch.
  int ch_threads = 0;
};

/// \brief Ground-truth (realized) components of one charger, normalized.
struct EcTruth {
  double level = 0.0;
  double availability = 0.0;
  double derouting = 0.0;
  double eta_s = 0.0;
  bool degraded = false;  ///< any EIS-fed component came from a stale/widened
                          ///< fetch (Truth() never degrades: it reads the raw
                          ///< ground-truth services, not the EIS)
};

/// \brief Assembles the three Estimated Components for a charger.
///
/// Two fidelities mirror the paper's phases:
///  - EstimateIntervals(): interval ECs from the forecast services via the
///    EIS caches — cheap, used by the CkNN-EC filtering phase and by the
///    production EcoCharge ranker.
///  - Truth(): realized values with network-exact derouting — what actually
///    happens; the Brute-Force oracle ranks by these, and the evaluation
///    scores every method's picks against them.
///
/// Thread safety: one estimator is NOT safe to share between threads (it
/// owns Dijkstra scratch, a derouting memo, and the fleet-energy cache).
/// The concurrent serving runtime gives each worker its own estimator and
/// shares only the InformationServer between them via the borrowing
/// constructor — the EIS is internally synchronized, and every estimator
/// output is a pure function of (seed, query), so per-worker instances
/// produce bit-identical components.
class EcEstimator {
 public:
  EcEstimator(std::shared_ptr<const RoadNetwork> network,
              const std::vector<EvCharger>* fleet,
              SolarEnergyService* energy,
              const AvailabilityService* availability,
              const CongestionModel* congestion,
              const EcEstimatorOptions& options);

  /// Like above, but borrows `shared_eis` (not owned; must outlive this)
  /// instead of constructing a private InformationServer — the shape the
  /// OfferingServer uses so all workers account upstream calls against,
  /// and benefit from, one set of sharded response caches.
  EcEstimator(std::shared_ptr<const RoadNetwork> network,
              const std::vector<EvCharger>* fleet,
              SolarEnergyService* energy,
              const AvailabilityService* availability,
              const CongestionModel* congestion,
              const EcEstimatorOptions& options,
              InformationServer* shared_eis);

  /// Interval ECs (normalized) for `charger` seen from `state`.
  /// `derouting_norm_m` overrides the D normalization constant (the
  /// "environment's maximum derouting distance", which scales with the
  /// user's configured radius R); 0 keeps the estimator-wide default.
  EcIntervals EstimateIntervals(const VehicleState& state,
                                const EvCharger& charger,
                                double derouting_norm_m = 0.0);

  /// Like EstimateIntervals but with the derouting interval replaced by the
  /// network-exact value — the refinement phase's upgrade path.
  EcIntervals EstimateWithExactDerouting(const VehicleState& state,
                                         const EvCharger& charger,
                                         double derouting_norm_m = 0.0);

  /// Batched form of the exact-derouting upgrade: one forward sweep plus
  /// one (possibly warm) backward sweep covers every charger in
  /// `chargers`, writing one estimate per charger into
  /// `scratch->estimates` (input order, bit-identical to per-charger
  /// Exact calls). The caller folds each estimate into its interval ECs
  /// with ApplyExactDerouting().
  BatchSweepStats ExactDeroutingBatch(const VehicleState& state,
                                      std::span<const ChargerRef> chargers,
                                      DeroutingBatchScratch* scratch);

  /// Folds a network-exact derouting estimate into `*ecs` exactly the way
  /// EstimateWithExactDerouting does — shared so the batched and
  /// per-candidate refinement paths cannot drift.
  void ApplyExactDerouting(const DeroutingEstimate& exact,
                           double derouting_norm_m, EcIntervals* ecs) const;

  /// Recomputes only the derouting interval and ETA of `ecs` for a new
  /// vehicle state, keeping the (possibly stale) L and A estimates — the
  /// Dynamic Caching adaptation step.
  void ReviseDerouting(const VehicleState& state, const EvCharger& charger,
                       EcIntervals* ecs, double derouting_norm_m = 0.0);

  /// Realized normalized components.
  EcTruth Truth(const VehicleState& state, const EvCharger& charger);

  /// Realized SC score under `weights`.
  double TrueScore(const VehicleState& state, const EvCharger& charger,
                   const ScoreWeights& weights);

  /// Best-knowable components: forecast midpoints for L and A plus the
  /// network-exact derouting cost. This is the objective the Brute-Force
  /// oracle maximizes and every method is scored against — the estimation
  /// noise of the upstream forecasts is identical for all methods, so the
  /// metric isolates the *search* quality (the paper's SC%).
  EcTruth ReferenceComponents(const VehicleState& state,
                              const EvCharger& charger);

  /// SC under the reference components.
  double ReferenceScore(const VehicleState& state, const EvCharger& charger,
                        const ScoreWeights& weights);

  /// The derouting-service query for `state` (node snaps + return points).
  /// Exposed so batch callers and benches can drive the DeroutingService
  /// with exactly the query the estimator would build.
  DeroutingQuery MakeDeroutingQuery(const VehicleState& state) const {
    return MakeQuery(state);
  }

  /// Normalizes raw kWh into the L score: relative to the best deliverable
  /// energy over the fleet for a window starting near `t` (the paper's
  /// Eq. 1, L(B) = max{s_t^b}). Returns 0 when nothing produces (night).
  double NormalizeEnergy(double kwh, double window_s, SimTime t);

  /// Normalizes raw extra meters into the D score; `norm_m` <= 0 uses the
  /// estimator-wide default.
  double NormalizeDerouting(double extra_m, double norm_m = 0.0) const;

  const std::vector<EvCharger>& fleet() const { return *fleet_; }
  DeroutingService& derouting_service() { return derouting_; }
  InformationServer& information_server() { return *eis_; }
  const EcEstimatorOptions& options() const { return options_; }

  /// Wires per-EC estimate counters (`estimator.estimates.{level,
  /// availability,derouting}` plus `estimator.estimates.exact_derouting`)
  /// onto `registry`; null detaches. When this estimator owns its private
  /// InformationServer, the EIS is wired too (a borrowed shared EIS is
  /// attached by whoever owns it, exactly once). Counter handles resolve
  /// here, not on the estimate path, so steady-state cost is one branch
  /// plus a relaxed fetch_add per component.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  DeroutingQuery MakeQuery(const VehicleState& state) const;

  /// Finds the fleet site maximizing min(rate, pv) for the L normalization.
  void PickBestSite();

  /// Fleet-max deliverable energy for a window anchored at `t`'s
  /// 15-minute bucket (cached; this is an environment property).
  double MaxFleetEnergyKwh(SimTime t, double window_s);

  std::shared_ptr<const RoadNetwork> network_;
  const std::vector<EvCharger>* fleet_;
  SolarEnergyService* energy_;
  const AvailabilityService* availability_;
  EcEstimatorOptions options_;
  DeroutingService derouting_;
  std::unique_ptr<InformationServer> owned_eis_;  ///< null when borrowing
  InformationServer* eis_;
  size_t best_site_index_ = 0;  // fleet index maximizing min(rate, pv)
  std::unordered_map<uint64_t, double> max_energy_cache_;

  // Observability (null until AttachMetrics): one count per estimated
  // component, so statsz shows how much L/A/D estimation work each run did.
  obs::Counter* level_estimates_ = nullptr;
  obs::Counter* availability_estimates_ = nullptr;
  obs::Counter* derouting_estimates_ = nullptr;
  obs::Counter* exact_derouting_estimates_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_EC_ESTIMATOR_H_
