#include "core/continuous.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/ec_estimator.h"

namespace ecocharge {

ContinuousTripRunner::ContinuousTripRunner(const RoadNetwork* network,
                                           Ranker* ranker,
                                           const ContinuousRunOptions& options,
                                           EcEstimator* estimator)
    : network_(network),
      ranker_(ranker),
      options_(options),
      estimator_(estimator) {}

TripRun ContinuousTripRunner::Run(
    const Trajectory& trip,
    const std::function<void(const VehicleState&, const OfferingTable&)>&
        on_table) {
  TripRun run;
  run.trip_id = trip.object_id();
  if (trip.size() < 2) return run;

  // Base recomputation points: one vehicle state per segment boundary.
  std::vector<VehicleState> states =
      TripStates(*network_, trip, options_.segment_length_m,
                 options_.charge_window_s);
  if (states.empty()) return run;

  // Densify with wall-clock recomputation points: if a segment takes
  // longer than the recompute window to traverse, insert intermediate
  // states at window multiples (same segment context, advanced position).
  std::vector<VehicleState> schedule;
  for (size_t i = 0; i < states.size(); ++i) {
    schedule.push_back(states[i]);
    SimTime seg_end_time =
        i + 1 < states.size() ? states[i + 1].time : trip.EndTime();
    SimTime t = states[i].time + options_.recompute_window_s;
    while (t < seg_end_time) {
      VehicleState mid = states[i];
      mid.time = t;
      mid.position = trip.PositionAt(t);
      mid.node = network_->NearestNode(mid.position);
      schedule.push_back(mid);
      t += options_.recompute_window_s;
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const VehicleState& a, const VehicleState& b) {
              return a.time < b.time;
            });

  // Scope the trip's exact-cost time bucket onto the derouting service so
  // the backward sweep warm-starts across recomputation points; restore
  // the previous configuration when the trip ends.
  DeroutingService* derouting =
      estimator_ && options_.derouting_bucket_s > 0.0
          ? &estimator_->derouting_service()
          : nullptr;
  const double saved_bucket =
      derouting ? derouting->exact_time_bucket_s() : 0.0;
  if (derouting) {
    derouting->set_exact_time_bucket_s(options_.derouting_bucket_s);
  }

  ranker_->Reset();
  Polyline path = trip.AsPolyline();
  ChargerId previous_top = static_cast<ChargerId>(-1);
  bool have_top = false;
  // One context reused across the trip keeps the timed region
  // allocation-free once the buffers are warm; the tables themselves are
  // part of the run's result, so each is ranked into a fresh one.
  QueryContext ctx;
  for (const VehicleState& state : schedule) {
    Stopwatch timer;
    OfferingTable table;
    ranker_->RankInto(state, options_.k, ctx, &table);
    run.total_compute_ms += timer.ElapsedMillis();
    if (table.adapted_from_cache) ++run.cache_adaptations;
    if (!table.empty()) {
      if (have_top && table.top().charger_id != previous_top) {
        run.top_change_positions_m.push_back(path.Project(state.position));
      }
      previous_top = table.top().charger_id;
      have_top = true;
    }
    if (on_table) on_table(state, table);
    run.tables.push_back(std::move(table));
  }
  if (derouting) derouting->set_exact_time_bucket_s(saved_bucket);
  return run;
}

}  // namespace ecocharge
