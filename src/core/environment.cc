#include "core/environment.h"

#include <thread>

#include "ch/ch_customize.h"
#include "ch/contraction.h"
#include "graph/io.h"

namespace ecocharge {

ClimateParams DefaultClimate(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kOldenburg:
      return ClimateParams{0.38, 0.82};  // north-German grey
    case DatasetKind::kCalifornia:
      return ClimateParams{0.78, 0.90};  // reliably sunny
    case DatasetKind::kTDrive:
      return ClimateParams{0.55, 0.85};  // Beijing continental
    case DatasetKind::kGeolife:
      return ClimateParams{0.55, 0.85};
  }
  return ClimateParams{};
}

double DefaultLatitude(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kOldenburg:
      return 53.1;
    case DatasetKind::kCalifornia:
      return 37.0;
    case DatasetKind::kTDrive:
    case DatasetKind::kGeolife:
      return 39.9;
  }
  return 45.0;
}

Result<std::unique_ptr<Environment>> MakeEnvironment(
    const EnvironmentOptions& options) {
  auto env = std::make_unique<Environment>();

  DatasetOptions ds_opts;
  ds_opts.scale = options.dataset_scale;
  ds_opts.seed = options.seed;
  if (!options.graph_snapshot.empty()) {
    ECOCHARGE_ASSIGN_OR_RETURN(
        env->dataset,
        MakeSnapshotDataset(options.graph_snapshot, options.kind, ds_opts));
  } else {
    ECOCHARGE_ASSIGN_OR_RETURN(env->dataset,
                               MakeDataset(options.kind, ds_opts));
  }

  ChargerFleetOptions fleet_opts;
  fleet_opts.num_chargers = options.num_chargers;
  fleet_opts.seed = options.seed ^ 0xC0FFEEULL;
  ECOCHARGE_ASSIGN_OR_RETURN(
      env->chargers, GenerateChargerFleet(*env->dataset.network, fleet_opts));

  SolarModel solar;
  solar.latitude_deg = DefaultLatitude(options.kind);
  env->energy = std::make_unique<SolarEnergyService>(
      solar, DefaultClimate(options.kind), options.seed ^ 0x50AAULL);
  env->availability =
      std::make_unique<AvailabilityService>(options.seed ^ 0xA11AULL);
  env->congestion =
      std::make_unique<CongestionModel>(options.seed ^ 0x7AFF1CULL);

  if (options.derouting_backend == DeroutingBackend::kCh) {
    if (!options.graph_snapshot.empty()) {
      // Reuse a preprocessed hierarchy when the snapshot carries one (the
      // `graph ch` artifact) — zero-copy, no re-contraction.
      ECOCHARGE_ASSIGN_OR_RETURN(LoadedSnapshot snap,
                                 LoadSnapshotWithAux(options.graph_snapshot));
      if (snap.ch.has_value()) {
        ECOCHARGE_ASSIGN_OR_RETURN(
            env->ch,
            ChIndexFromSnapshot(*snap.ch, env->dataset.network->NumEdges()));
      }
    }
    if (env->ch == nullptr) {
      ECOCHARGE_ASSIGN_OR_RETURN(env->ch,
                                 BuildChIndex(*env->dataset.network));
    }
  }

  EcEstimatorOptions est_opts;
  est_opts.max_derouting_m = options.max_derouting_m;
  est_opts.exact_derouting_bucket_s = options.exact_derouting_bucket_s;
  est_opts.ch = env->ch.get();
  if (env->ch != nullptr) {
    // -1 resolves to the machine; 0 stays the serial seed path. Every
    // setting prices bit-identically, so this is purely a latency knob.
    int ch_threads = options.ch_threads;
    if (ch_threads < 0) {
      ch_threads =
          static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    }
    est_opts.ch_threads = ch_threads;
    if (options.ch_shared_cache) {
      env->ch_cache =
          std::make_shared<ChCustomizationCache>(*env->ch, ch_threads);
      est_opts.ch_cache = env->ch_cache.get();
    }
  }
  env->estimator = std::make_unique<EcEstimator>(
      env->dataset.network, &env->chargers, env->energy.get(),
      env->availability.get(), env->congestion.get(), est_opts);

  if (options.num_landmarks > 0) {
    env->landmarks = std::make_unique<LandmarkIndex>(*env->dataset.network,
                                                     options.num_landmarks);
  }

  std::vector<Point> charger_points;
  charger_points.reserve(env->chargers.size());
  for (const EvCharger& c : env->chargers) {
    charger_points.push_back(c.position);
  }
  env->index_kind = options.index_kind;
  env->charger_index = MakeSpatialIndex(options.index_kind);
  env->charger_index->Build(std::move(charger_points));

  return env;
}

}  // namespace ecocharge
