#ifndef ECOCHARGE_CORE_EVALUATION_H_
#define ECOCHARGE_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "common/statistics.h"
#include "core/ec_estimator.h"
#include "core/ranker.h"

namespace ecocharge {

/// \brief Aggregated evaluation of one method over one workload, matching
/// the paper's reporting: mean/stddev of CPU time F_t (ms per Offering
/// Table) and of the Sustainability Score SC as a percentage of the
/// Brute-Force optimum.
struct MethodEvaluation {
  std::string method;
  RunningStats ft_ms;       ///< per-query generation time
  RunningStats sc_percent;  ///< per-query SC relative to the oracle
  size_t num_queries = 0;
};

/// \brief Scores rankers against the Brute-Force oracle.
///
/// The oracle's top-k reference-SC sum (see
/// EcEstimator::ReferenceComponents) is computed once per vehicle state
/// (outside any timed region) and cached; each evaluated method is then
/// timed on Rank() alone, and its picks are re-scored with the reference
/// components. SC% = 100 * sum(method picks' SC) / oracle sum.
class Evaluator {
 public:
  /// \param estimator shared EC estimator (not owned)
  /// \param weights objective weights the oracle and metrics use
  Evaluator(EcEstimator* estimator, const ScoreWeights& weights);

  /// Sets the vehicle states to evaluate on (resets oracle cache).
  void SetWorkload(std::vector<VehicleState> states);

  /// Evaluates `ranker` over the workload, `repetitions` passes. Between
  /// passes Reset() is invoked; within a pass the ranker keeps its caches
  /// so Dynamic Caching shows its real behaviour across a trip.
  MethodEvaluation Evaluate(Ranker& ranker, size_t k, int repetitions = 3);

  /// The oracle's per-state top-k true-SC sums (computed lazily).
  const std::vector<double>& OracleScores(size_t k);

  const std::vector<VehicleState>& workload() const { return states_; }

 private:
  double TrueSumOf(const VehicleState& state, const OfferingTable& table);
  void ComputeOracle(size_t k);

  EcEstimator* estimator_;
  ScoreWeights weights_;
  std::vector<VehicleState> states_;
  std::vector<double> oracle_sums_;
  size_t oracle_k_ = 0;
  bool oracle_ready_ = false;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_EVALUATION_H_
