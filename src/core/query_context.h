#ifndef ECOCHARGE_CORE_QUERY_CONTEXT_H_
#define ECOCHARGE_CORE_QUERY_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "core/offering_table.h"
#include "core/simd_score.h"
#include "spatial/spatial_index.h"
#include "traffic/derouting.h"

namespace ecocharge {

/// \brief A scored candidate inside the CkNN-EC pipeline.
struct ScoredCandidate {
  ChargerId charger_id = 0;
  ScorePair score;
  EcIntervals ecs;
};

/// \brief Reusable per-query scratch for the whole ranking pipeline.
///
/// Every stage of a CkNN-EC query (spatial filtering, EC scoring, the
/// eq. 6 iterative-deepening intersection, refinement) writes its working
/// set into one of these buffers instead of a fresh vector, so a caller
/// that keeps a context alive across queries reaches a steady state where
/// an offering-table generation performs zero heap allocations — including
/// the exact network-derouting refinement, whose sweep frontier lives in
/// the estimator's search workspace and whose batch staging lives in the
/// `derouting` scratch below. Buffers grow to the workload's high-water
/// mark and stay.
///
/// A context carries no query results across calls — only capacity. It is
/// not thread-safe; give each worker thread its own context. Every Ranker
/// owns a fallback context, so the allocating Ranker::Rank() convenience
/// keeps this reuse without the caller managing anything.
struct QueryContext {
  IndexScratch spatial;  ///< index traversal scratch (stacks, kNN heaps)

  std::vector<Neighbor> neighbors;      ///< filtering: range/kNN results
  std::vector<ChargerId> candidates;    ///< filtering: surviving charger ids
  std::vector<ScoredCandidate> scored;  ///< scoring: the candidate pool
  std::vector<ScoredCandidate> selected;  ///< intersection winners
  std::vector<ScoredCandidate> reorder;   ///< ALT refine-order staging

  /// Struct-of-arrays candidate lanes for the vectorized filter/score path
  /// (DESIGN.md §15): the gather step transposes neighbors/EC intervals in
  /// here once per query; the SIMD kernels stream over the lanes. Grows to
  /// the high-water mark like every other buffer.
  simd::ScoreLanes lanes;

  /// Batched exact-derouting scratch: target ids, charger refs, and the
  /// per-candidate estimates of the one-sweep-per-segment refinement.
  DeroutingBatchScratch derouting;

  // Eq. 6 rank orders and the membership marks replacing the per-depth
  // hash set (mark_epoch stamps entries instead of clearing the array).
  std::vector<uint32_t> order_min;
  std::vector<uint32_t> order_max;
  std::vector<uint32_t> common;
  std::vector<uint64_t> member_mark;
  uint64_t mark_epoch = 0;

  std::vector<OfferingEntry> entries;  ///< refinement output scratch
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_QUERY_CONTEXT_H_
