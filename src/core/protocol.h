#ifndef ECOCHARGE_CORE_PROTOCOL_H_
#define ECOCHARGE_CORE_PROTOCOL_H_

#include <string>

#include "common/result.h"
#include "core/offering_table.h"
#include "core/vehicle_state.h"

namespace ecocharge {

/// \brief Mode 2 wire protocol: the client ships its vehicle state, the
/// EIS replies with an Offering Table.
///
/// The encoding is a line-oriented text format (one `key value...` pair
/// per line, terminated by `end`), chosen for debuggability — the real
/// deployment the paper describes used HTTP+JSON through Nginx; the
/// semantics, not the syntax, are what the library reproduces.
struct OfferingRequest {
  VehicleState state;
  size_t k = 3;
};

/// Serializes a request to the wire format.
std::string EncodeOfferingRequest(const OfferingRequest& request);

/// Parses a request; rejects malformed or incomplete messages.
Result<OfferingRequest> DecodeOfferingRequest(const std::string& wire);

/// Serializes an Offering Table (the response).
std::string EncodeOfferingTable(const OfferingTable& table);

/// Parses an Offering Table.
Result<OfferingTable> DecodeOfferingTable(const std::string& wire);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_PROTOCOL_H_
