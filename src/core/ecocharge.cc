#include "core/ecocharge.h"

namespace ecocharge {

namespace {

CknnEcOptions ProcessorOptions(const EcoChargeOptions& o) {
  CknnEcOptions c;
  c.radius_m = o.radius_m;
  c.refine_limit = o.refine_limit;
  c.refine_exact_derouting = o.refine_exact_derouting;
  c.use_intersection = o.use_intersection;
  c.batch_derouting = o.batch_derouting;
  c.landmarks = o.landmarks;
  c.landmark_refine_order = o.landmark_refine_order;
  c.ch = o.ch;
  c.use_simd = o.use_simd;
  // The user's radius defines the environment the paper normalizes the
  // derouting cost by: D = extra distance / (2R).
  c.derouting_norm_m = 2.0 * o.radius_m;
  return c;
}

}  // namespace

EcoChargeRanker::EcoChargeRanker(EcEstimator* estimator,
                                 const SpatialIndex* charger_index,
                                 const ScoreWeights& weights,
                                 const EcoChargeOptions& options)
    : estimator_(estimator),
      weights_(weights),
      options_(options),
      processor_(estimator, charger_index, ProcessorOptions(options)),
      cache_(DynamicCacheOptions{options.q_distance_m, options.cache_ttl_s}) {}

void EcoChargeRanker::RankInto(const VehicleState& state, size_t k,
                               QueryContext& ctx, OfferingTable* out) {
  out->generated_at = state.time;
  out->location = state.position;
  out->segment_index = state.segment_index;
  out->adapted_from_cache = false;
  out->degraded = false;
  out->entries.clear();

  if (const std::vector<ScoredCandidate>* cached =
          options_.use_dynamic_cache
              ? cache_.TryReuse(state.position, state.time)
              : nullptr) {
    // Adaptation: reuse the previously solved sub-problems. By default the
    // recalculation is skipped entirely (the cached L/A/D stay as computed
    // at the anchor position — the staleness the Q parameter trades away);
    // optionally the derouting component is revised for the new position.
    // The adaptation path also trades a little accuracy for speed:
    // estimated intervals only, no network-exact refinement.
    ctx.scored.assign(cached->begin(), cached->end());
    if (options_.adapt_revises_derouting) {
      const std::vector<EvCharger>& fleet = estimator_->fleet();
      for (ScoredCandidate& c : ctx.scored) {
        if (c.charger_id >= fleet.size()) continue;
        estimator_->ReviseDerouting(state, fleet[c.charger_id], &c.ecs,
                                    2.0 * options_.radius_m);
        c.score = ComputeScorePair(c.ecs, weights_);
      }
    }
    processor_.RefineAndRank(state, &ctx.scored, k, weights_,
                             /*refine_exact_derouting=*/false, &ctx,
                             &out->entries);
    out->adapted_from_cache = true;
    for (const OfferingEntry& e : out->entries) {
      out->NoteEntryDegradation(e.ecs);
    }
    return;
  }

  // Full regeneration: filter within R, score, intersect, refine.
  const std::vector<ChargerId>& candidates =
      processor_.FilterCandidates(state.position, &ctx);
  const std::vector<ScoredCandidate>& scored =
      processor_.ScoreCandidates(state, candidates, weights_, &ctx);
  if (options_.use_dynamic_cache) {
    cache_.Store(state.position, state.time, scored);
  }
  processor_.RefineAndRank(state, &scored, k, weights_,
                           options_.refine_exact_derouting, &ctx,
                           &out->entries);
  for (const OfferingEntry& e : out->entries) {
    out->NoteEntryDegradation(e.ecs);
  }
}

void EcoChargeRanker::Reset() { cache_.Clear(); }

}  // namespace ecocharge
