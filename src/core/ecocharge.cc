#include "core/ecocharge.h"

namespace ecocharge {

namespace {

CknnEcOptions MainProcessorOptions(const EcoChargeOptions& o) {
  CknnEcOptions c;
  c.radius_m = o.radius_m;
  c.refine_limit = o.refine_limit;
  c.refine_exact_derouting = o.refine_exact_derouting;
  c.use_intersection = o.use_intersection;
  // The user's radius defines the environment the paper normalizes the
  // derouting cost by: D = extra distance / (2R).
  c.derouting_norm_m = 2.0 * o.radius_m;
  return c;
}

CknnEcOptions CachedProcessorOptions(const EcoChargeOptions& o) {
  CknnEcOptions c = MainProcessorOptions(o);
  // The adaptation path trades a little accuracy for speed: estimated
  // intervals only, no network-exact refinement.
  c.refine_exact_derouting = false;
  return c;
}

}  // namespace

EcoChargeRanker::EcoChargeRanker(EcEstimator* estimator,
                                 const QuadTree* charger_index,
                                 const ScoreWeights& weights,
                                 const EcoChargeOptions& options)
    : estimator_(estimator),
      weights_(weights),
      options_(options),
      processor_(estimator, charger_index, MainProcessorOptions(options)),
      cached_processor_(estimator, charger_index,
                        CachedProcessorOptions(options)),
      cache_(DynamicCacheOptions{options.q_distance_m, options.cache_ttl_s}) {}

OfferingTable EcoChargeRanker::Rank(const VehicleState& state, size_t k) {
  OfferingTable table;
  table.generated_at = state.time;
  table.location = state.position;
  table.segment_index = state.segment_index;

  if (const std::vector<ScoredCandidate>* cached =
          cache_.TryReuse(state.position, state.time)) {
    // Adaptation: reuse the previously solved sub-problems. By default the
    // recalculation is skipped entirely (the cached L/A/D stay as computed
    // at the anchor position — the staleness the Q parameter trades away);
    // optionally the derouting component is revised for the new position.
    std::vector<ScoredCandidate> scored = *cached;
    if (options_.adapt_revises_derouting) {
      const std::vector<EvCharger>& fleet = estimator_->fleet();
      for (ScoredCandidate& c : scored) {
        if (c.charger_id >= fleet.size()) continue;
        estimator_->ReviseDerouting(state, fleet[c.charger_id], &c.ecs,
                                    2.0 * options_.radius_m);
        c.score = ComputeScorePair(c.ecs, weights_);
      }
    }
    table.entries =
        cached_processor_.RefineAndRank(state, std::move(scored), k,
                                        weights_);
    table.adapted_from_cache = true;
    return table;
  }

  // Full regeneration: filter within R, score, intersect, refine.
  std::vector<ChargerId> candidates =
      processor_.FilterCandidates(state.position);
  std::vector<ScoredCandidate> scored =
      processor_.ScoreCandidates(state, candidates, weights_);
  cache_.Store(state.position, state.time, scored);
  table.entries =
      processor_.RefineAndRank(state, std::move(scored), k, weights_);
  return table;
}

void EcoChargeRanker::Reset() { cache_.Clear(); }

}  // namespace ecocharge
