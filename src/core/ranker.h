#ifndef ECOCHARGE_CORE_RANKER_H_
#define ECOCHARGE_CORE_RANKER_H_

#include <string_view>

#include "core/offering_table.h"
#include "core/query_context.h"
#include "core/vehicle_state.h"

namespace ecocharge {

/// \brief A charger-ranking method: given a vehicle state, produce an
/// Offering Table with the top-k chargers. Implemented by EcoCharge and by
/// the paper's three baselines.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Method name as printed in result tables.
  virtual std::string_view name() const = 0;

  /// Produces the Offering Table for `state` into `*out` (fields are
  /// overwritten; `out->entries` capacity is reused). k is the table size.
  /// All pipeline scratch goes through `ctx`, so a caller that keeps the
  /// context and table alive across queries runs allocation-free once
  /// buffers reach the workload's high-water mark.
  virtual void RankInto(const VehicleState& state, size_t k, QueryContext& ctx,
                        OfferingTable* out) = 0;

  /// Allocating convenience form; uses a ranker-owned scratch context, so
  /// repeated calls on the same ranker still reuse warm buffers.
  OfferingTable Rank(const VehicleState& state, size_t k) {
    OfferingTable table;
    RankInto(state, k, scratch_, &table);
    return table;
  }

  /// Clears any cross-query state (Dynamic Caching); called between trips
  /// and between benchmark repetitions. Default: nothing to reset.
  virtual void Reset() {}

 private:
  QueryContext scratch_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_RANKER_H_
