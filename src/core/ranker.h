#ifndef ECOCHARGE_CORE_RANKER_H_
#define ECOCHARGE_CORE_RANKER_H_

#include <string_view>

#include "core/offering_table.h"
#include "core/vehicle_state.h"

namespace ecocharge {

/// \brief A charger-ranking method: given a vehicle state, produce an
/// Offering Table with the top-k chargers. Implemented by EcoCharge and by
/// the paper's three baselines.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Method name as printed in result tables.
  virtual std::string_view name() const = 0;

  /// Produces the Offering Table for `state`. k is the table size.
  virtual OfferingTable Rank(const VehicleState& state, size_t k) = 0;

  /// Clears any cross-query state (Dynamic Caching); called between trips
  /// and between benchmark repetitions. Default: nothing to reset.
  virtual void Reset() {}
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_RANKER_H_
