#ifndef ECOCHARGE_CORE_CONTINUOUS_H_
#define ECOCHARGE_CORE_CONTINUOUS_H_

#include <functional>
#include <vector>

#include "core/ranker.h"
#include "core/workload.h"

namespace ecocharge {

class EcEstimator;

/// \brief Per-trip outcome of a continuous run.
struct TripRun {
  uint64_t trip_id = 0;
  std::vector<OfferingTable> tables;   ///< one per recomputation point
  size_t cache_adaptations = 0;        ///< tables adapted, not regenerated
  double total_compute_ms = 0.0;

  /// Arc positions (meters along the trip) where the top-ranked charger
  /// changed — the solution-level split points of the CkNN-EC result.
  std::vector<double> top_change_positions_m;
};

/// \brief Options of the continuous monitoring loop.
struct ContinuousRunOptions {
  size_t k = 3;
  double segment_length_m = 4000.0;          ///< Step 1 granularity
  double recompute_window_s = 4.0 * 60.0;    ///< the client's ~3-5 min cycle
  double charge_window_s = kSecondsPerHour;

  /// Exact-derouting cost-time bucket applied for the duration of a trip
  /// (see DeroutingService::set_exact_time_bucket_s): the refinement
  /// sweeps then warm-start across the trip's recomputation points,
  /// invalidating only at bucket boundaries. Takes effect only when the
  /// runner is given the estimator handle; 0 (default) leaves the
  /// estimator's configuration untouched.
  double derouting_bucket_s = 0.0;
};

/// \brief Drives one vehicle along its scheduled trip, re-ranking at every
/// recomputation point (the EcoCharge Client's continuous loop,
/// Section IV-A).
///
/// Recomputation points are the denser of: segment boundaries (neighbors
/// can only change at split points) and the wall-clock recompute window.
/// The ranker's Dynamic Caching decides per point whether to adapt or
/// regenerate.
class ContinuousTripRunner {
 public:
  /// \param estimator optional: when given together with
  ///        `options.derouting_bucket_s > 0`, each Run() scopes that
  ///        exact-cost bucket onto the estimator's derouting service
  ///        (restoring the previous setting afterwards) so the backward
  ///        sweep warm-starts across recomputation points.
  ContinuousTripRunner(const RoadNetwork* network, Ranker* ranker,
                       const ContinuousRunOptions& options,
                       EcEstimator* estimator = nullptr);

  /// Runs the full trip; the optional callback observes every table as it
  /// is produced (the "display to the driver" step).
  TripRun Run(const Trajectory& trip,
              const std::function<void(const VehicleState&,
                                       const OfferingTable&)>& on_table = {});

 private:
  const RoadNetwork* network_;
  Ranker* ranker_;
  ContinuousRunOptions options_;
  EcEstimator* estimator_;  ///< may be null (no bucket scoping)
};

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_CONTINUOUS_H_
