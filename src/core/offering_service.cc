#include "core/offering_service.h"

namespace ecocharge {

OfferingService::OfferingService(EcEstimator* estimator,
                                 const SpatialIndex* charger_index,
                                 const ScoreWeights& weights,
                                 const EcoChargeOptions& options,
                                 double client_ttl_s)
    : estimator_(estimator),
      charger_index_(charger_index),
      weights_(weights),
      options_(options),
      client_ttl_s_(client_ttl_s) {}

OfferingService::ClientState& OfferingService::ClientFor(uint64_t client_id) {
  ClientState& client = clients_[client_id];
  if (!client.ranker) {
    client.ranker = std::make_unique<EcoChargeRanker>(
        estimator_, charger_index_, weights_, options_);
    client.ranker->set_metrics(pipeline_metrics_);
  }
  return client;
}

EcoChargeRanker& OfferingService::FreshRanker() {
  if (!fresh_ranker_) {
    EcoChargeOptions fresh = options_;
    fresh.use_dynamic_cache = false;
    fresh_ranker_ = std::make_unique<EcoChargeRanker>(
        estimator_, charger_index_, weights_, fresh);
    fresh_ranker_->set_metrics(pipeline_metrics_);
  }
  return *fresh_ranker_;
}

EcoChargeRanker& OfferingService::SharedRanker() {
  if (!shared_ranker_) {
    shared_ranker_ = std::make_unique<EcoChargeRanker>(
        estimator_, charger_index_, weights_, options_);
    shared_ranker_->set_metrics(pipeline_metrics_);
  }
  return *shared_ranker_;
}

void OfferingService::AttachMetrics(obs::MetricsRegistry* registry) {
  pipeline_metrics_ =
      registry ? PipelineMetrics::FromRegistry(registry) : PipelineMetrics{};
  for (auto& [id, client] : clients_) {
    if (client.ranker) client.ranker->set_metrics(pipeline_metrics_);
  }
  if (fresh_ranker_) fresh_ranker_->set_metrics(pipeline_metrics_);
  if (shared_ranker_) shared_ranker_->set_metrics(pipeline_metrics_);
}

void OfferingService::RankInto(uint64_t client_id, const VehicleState& state,
                               size_t k, OfferingTable* out) {
  ++stats_.requests;
  ClientState& client = ClientFor(client_id);
  client.last_seen = state.time;
  client.ranker->RankInto(state, k, ctx_, out);
  ++stats_.tables_served;
  if (out->adapted_from_cache) ++stats_.cache_adaptations;
}

void OfferingService::RankFresh(const VehicleState& state, size_t k,
                                OfferingTable* out) {
  ++stats_.requests;
  FreshRanker().RankInto(state, k, ctx_, out);
  ++stats_.tables_served;
}

void OfferingService::RankWithCache(const VehicleState& state, size_t k,
                                    DynamicCacheState* cache,
                                    OfferingTable* out) {
  ++stats_.requests;
  EcoChargeRanker& ranker = SharedRanker();
  ranker.SwapCacheState(cache);
  ranker.RankInto(state, k, ctx_, out);
  ranker.SwapCacheState(cache);
  ++stats_.tables_served;
  if (out->adapted_from_cache) ++stats_.cache_adaptations;
}

OfferingTable OfferingService::Rank(uint64_t client_id,
                                    const VehicleState& state, size_t k) {
  OfferingTable table;
  RankInto(client_id, state, k, &table);
  return table;
}

Result<std::string> OfferingService::Handle(uint64_t client_id,
                                            const std::string& wire) {
  Result<OfferingRequest> request = DecodeOfferingRequest(wire);
  if (!request.ok()) {
    ++stats_.requests;
    ++stats_.malformed_requests;
    return request.status();
  }
  RankInto(client_id, request.value().state, request.value().k, &table_);
  return EncodeOfferingTable(table_);
}

void OfferingService::EvictIdleClients(SimTime now) {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (now - it->second.last_seen > client_ttl_s_) {
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ecocharge
