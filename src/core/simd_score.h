#ifndef ECOCHARGE_CORE_SIMD_SCORE_H_
#define ECOCHARGE_CORE_SIMD_SCORE_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/score.h"

// Compile-time ISA dispatch: the widest vector extension the *target*
// guarantees is baked in at build time (no runtime cpuid probing — the
// pipeline's hot loop cannot afford an indirect call per batch, and the
// scalar reference path stays available behind a runtime flag for parity
// oracles and the --no-simd escape hatch). Exactly one of the macros below
// is set to 1; kScalarOnly builds still compile every entry point, backed
// by the reference loops.
#if defined(__AVX2__)
#define ECOCHARGE_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(__x86_64__) && !defined(__SSE2__))
#define ECOCHARGE_SIMD_SSE2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define ECOCHARGE_SIMD_NEON 1
#else
#define ECOCHARGE_SIMD_SCALAR 1
#endif

namespace ecocharge {
namespace simd {

/// Doubles per vector register on the compiled ISA (1 = scalar fallback).
#if defined(ECOCHARGE_SIMD_AVX2)
inline constexpr size_t kLaneWidth = 4;
inline constexpr const char* kIsaName = "avx2";
#elif defined(ECOCHARGE_SIMD_SSE2)
inline constexpr size_t kLaneWidth = 2;
inline constexpr const char* kIsaName = "sse2";
#elif defined(ECOCHARGE_SIMD_NEON)
inline constexpr size_t kLaneWidth = 2;
inline constexpr const char* kIsaName = "neon";
#else
inline constexpr size_t kLaneWidth = 1;
inline constexpr const char* kIsaName = "scalar";
#endif

/// \brief Total-order sort key for a score value, descending-friendly.
///
/// Maps doubles to uint64 such that a < b  <=>  Key(a) < Key(b) for all
/// ordered doubles, with two deliberate pins (the determinism contract of
/// DESIGN.md §15):
///  - NaN maps to 0, i.e. BELOW every real value including -inf: a
///    candidate whose score degraded all the way to NaN ranks strictly
///    last, never first, and never trips the strict-weak-ordering UB a
///    naive `double` comparator has.
///  - -0.0 maps below +0.0 (they differ in one bit; any deterministic
///    total order must pick a side).
/// Integer keys make every downstream comparison branch-light and keep
/// scalar and SIMD rankings identical by construction.
inline uint64_t DescendingKey(double v) {
  if (std::isnan(v)) return 0;
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  const uint64_t neg = static_cast<int64_t>(bits) < 0 ? ~uint64_t{0} : 0;
  return bits ^ (0x8000000000000000ull | (neg & 0x7FFFFFFFFFFFFFFFull));
}

/// Ascending-cost key: like DescendingKey but NaN maps ABOVE +inf, so a
/// NaN-cost candidate sorts last in ascending (cheapest-first) order too.
inline uint64_t AscendingCostKey(double v) {
  if (std::isnan(v)) return ~uint64_t{0};
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  const uint64_t neg = static_cast<int64_t>(bits) < 0 ? ~uint64_t{0} : 0;
  return bits ^ (0x8000000000000000ull | (neg & 0x7FFFFFFFFFFFFFFFull));
}

/// \brief Struct-of-arrays candidate lanes for the filter/score phase.
///
/// The gather step writes one slot per candidate: the six EC interval
/// endpoints, the spatial distance from the filtering range search, and
/// the charger id (the deterministic tiebreak lane). The kernels below
/// then produce the SC_min/SC_max/mid score lanes and their total-order
/// keys in bulk. Buffers are plain vectors that grow to the workload's
/// high-water mark and stay — a warm QueryContext performs zero heap
/// allocations per query, SoA lanes included. Loads are unaligned
/// (loadu/ld1) by design, so lane counts need no padding discipline.
struct ScoreLanes {
  std::vector<double> level_lo, level_hi;
  std::vector<double> avail_lo, avail_hi;
  std::vector<double> der_lo, der_hi;
  std::vector<double> distance;  ///< filter phase: spatial distance lane
  std::vector<uint32_t> ids;     ///< charger ids (sort tiebreak lane)
  std::vector<uint8_t> keep;     ///< pruning mask output (1 = survives)
  std::vector<double> sc_min, sc_max, mid;
  /// Total-order keys of the three rankings eq. 6 consumes (by SC_min, by
  /// SC_max, by midpoint) — separate lanes because the intersection needs
  /// the first two alive at once.
  std::vector<uint64_t> keys_min, keys_max, keys_mid;

  /// Pre-grows every lane to `n` slots (capacity only; sizes are set by
  /// each query's gather). The serving runtime calls this per worker so
  /// the first ranked query already runs allocation-free.
  void Reserve(size_t n) {
    for (std::vector<double>* lane :
         {&level_lo, &level_hi, &avail_lo, &avail_hi, &der_lo, &der_hi,
          &distance, &sc_min, &sc_max, &mid}) {
      lane->reserve(n);
    }
    ids.reserve(n);
    keep.reserve(n);
    for (std::vector<uint64_t>* lane : {&keys_min, &keys_max, &keys_mid}) {
      lane->reserve(n);
    }
  }

  /// Drops per-query contents, keeping capacity (called by the gather).
  void Clear() {
    for (std::vector<double>* lane :
         {&level_lo, &level_hi, &avail_lo, &avail_hi, &der_lo, &der_hi,
          &distance, &sc_min, &sc_max, &mid}) {
      lane->clear();
    }
    ids.clear();
    keep.clear();
    for (std::vector<uint64_t>* lane : {&keys_min, &keys_max, &keys_mid}) {
      lane->clear();
    }
  }
};

/// \brief Eq. (4)/(5) over SoA lanes:
///   sc_min[i] = l_lo[i] w1 + a_lo[i] w2 + (1 - d_lo[i]) w3
///   sc_max[i] = l_hi[i] w1 + a_hi[i] w2 + (1 - d_hi[i]) w3
/// Bit-identical to per-candidate ComputeScorePair: the kernel performs
/// the same IEEE multiply/add sequence per lane (this translation unit and
/// score.cc are built with FP contraction off, so neither side fuses).
/// Output pointers must not alias the inputs.
void ScoreIntervals(const double* level_lo, const double* level_hi,
                    const double* avail_lo, const double* avail_hi,
                    const double* der_lo, const double* der_hi, size_t n,
                    const ScoreWeights& w, double* sc_min, double* sc_max);

/// Scalar reference implementation (the parity oracle).
void ScoreIntervalsScalar(const double* level_lo, const double* level_hi,
                          const double* avail_lo, const double* avail_hi,
                          const double* der_lo, const double* der_hi,
                          size_t n, const ScoreWeights& w, double* sc_min,
                          double* sc_max);

/// mid[i] = (sc_min[i] + sc_max[i]) * 0.5 — identical bits to
/// ScorePair::Mid()'s (a + b) / 2.0 (division by two is exact scaling).
void Midpoints(const double* sc_min, const double* sc_max, size_t n,
               double* mid);
void MidpointsScalar(const double* sc_min, const double* sc_max, size_t n,
                     double* mid);

/// Pruning mask: mask[i] = 1 iff values[i] <= bound (NaN compares false,
/// so a NaN distance is pruned on both the scalar and the SIMD side).
void LeMask(const double* values, double bound, size_t n, uint8_t* mask);
void LeMaskScalar(const double* values, double bound, size_t n,
                  uint8_t* mask);

/// keys[i] = DescendingKey(values[i]) in bulk.
void DescendingKeys(const double* values, size_t n, uint64_t* keys);
void DescendingKeysScalar(const double* values, size_t n, uint64_t* keys);

/// \brief Branch-light partial top-m select over total-order keys.
///
/// Reorders `idx[0..n)` (any permutation of candidate slots) so that
/// `idx[0..m)` holds the m best slots by (key descending, tiebreak
/// ascending), sorted in that order; the suffix order is unspecified.
/// Because (key, tiebreak) is a strict total order — integer compares, no
/// NaN branches — the selected prefix is unique: a partial select is
/// bit-identical to a full sort followed by truncation, on every ISA and
/// every standard library. `tiebreak` is typically the charger-id lane; a
/// null `tiebreak` ties by the slot index itself.
void PartialSelectDescending(const uint64_t* keys, const uint32_t* tiebreak,
                             uint32_t* idx, size_t n, size_t m);

/// Ascending variant (cheapest-cost-first; used by the refinement-order
/// sort, where ties keep the prior selection position: pass null).
void PartialSelectAscending(const uint64_t* keys, const uint32_t* tiebreak,
                            uint32_t* idx, size_t n, size_t m);

}  // namespace simd
}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_SIMD_SCORE_H_
