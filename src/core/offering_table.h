#ifndef ECOCHARGE_CORE_OFFERING_TABLE_H_
#define ECOCHARGE_CORE_OFFERING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/score.h"
#include "core/vehicle_state.h"
#include "energy/charger.h"

namespace ecocharge {

/// \brief One row of an Offering Table: a recommended charger with its
/// score and the EC values that produced it.
struct OfferingEntry {
  ChargerId charger_id = 0;
  ScorePair score;        ///< eq. (4)/(5) pair used for the ranking
  EcIntervals ecs;        ///< the intervals behind the score
  double eta_s = 0.0;     ///< estimated drive time to the charger

  /// Sort key: midpoint of the score pair (descending = best first).
  double SortKey() const { return score.Mid(); }
};

/// \brief The Offering Table O: the ranked charger recommendations
/// EcoCharge shows the driver for one vehicle state.
struct OfferingTable {
  SimTime generated_at = 0.0;
  Point location;                 ///< vehicle position it was computed for
  size_t segment_index = 0;       ///< which p_i it belongs to
  bool adapted_from_cache = false;  ///< produced by Dynamic Caching reuse
  bool degraded = false;  ///< any entry's ECs came from a stale/widened fetch
                          ///< (resilience ladder, DESIGN.md §11)
  std::vector<OfferingEntry> entries;  ///< best first

  bool empty() const { return entries.empty(); }
  size_t size() const { return entries.size(); }
  const OfferingEntry& top() const { return entries.front(); }

  /// Folds one entry's degradation into the table-level flag.
  void NoteEntryDegradation(const EcIntervals& ecs) {
    degraded = degraded || ecs.degraded;
  }

  /// Charger ids in rank order.
  std::vector<ChargerId> ChargerIds() const;

  /// Human-readable multi-line rendering (used by the examples).
  std::string ToString(const std::vector<EvCharger>& fleet) const;
};

/// Sorts entries best-first (descending score midpoint, ties by id). The
/// comparator is the pipeline's total order (simd::DescendingKey): NaN
/// midpoints rank strictly last — a degraded-estimate entry can never float
/// to the top or trip strict-weak-ordering UB inside std::sort.
void SortOfferingEntries(std::vector<OfferingEntry>& entries);

/// Partial form: afterwards `entries[0..min(k, size))` holds exactly the
/// prefix a full SortOfferingEntries would produce, and the vector is
/// truncated to it. O(n + k log k) instead of O(n log n) — the prefix is
/// unique because the order above is total.
void SortOfferingEntriesTopK(std::vector<OfferingEntry>& entries, size_t k);

}  // namespace ecocharge

#endif  // ECOCHARGE_CORE_OFFERING_TABLE_H_
