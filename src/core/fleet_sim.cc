#include "core/fleet_sim.h"

#include <algorithm>

#include "core/environment.h"

namespace ecocharge {

FleetSimulator::FleetSimulator(Environment* env,
                               const FleetSimOptions& options)
    : env_(env), options_(options), rng_(options.seed) {}

std::vector<FleetVehicle> FleetSimulator::MakeFleet(size_t max_vehicles) {
  std::vector<FleetVehicle> fleet;
  size_t count =
      std::min(max_vehicles, env_->dataset.trajectories.size());
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    FleetVehicle v;
    v.id = i;
    v.ev_class = static_cast<EvClass>(i % 3);
    v.initial_soc = rng_.NextDouble(0.35, 0.85);
    v.trajectory = &env_->dataset.trajectories[i];
    fleet.push_back(v);
  }
  return fleet;
}

VehicleOutcome FleetSimulator::RunVehicle(const FleetVehicle& vehicle,
                                          Ranker& ranker) {
  VehicleOutcome outcome;
  outcome.vehicle_id = vehicle.id;
  EvModel ev = EvModel::ForClass(vehicle.ev_class);
  double soc = vehicle.initial_soc;

  ranker.Reset();
  std::vector<VehicleState> states =
      TripStates(*env_->dataset.network, *vehicle.trajectory,
                 options_.segment_length_m, options_.idle_window_s);
  for (size_t i = 0; i < states.size(); ++i) {
    const VehicleState& state = states[i];
    // Drive the segment.
    double seg_m = i + 1 < states.size()
                       ? Distance(state.position, states[i + 1].position)
                       : Distance(state.position, state.return_point_a);
    double drive_kwh = ev.DriveEnergyKwh(seg_m);
    outcome.driving_energy_kwh += drive_kwh;
    soc -= drive_kwh / ev.battery_kwh();
    if (soc <= 0.0) {
      soc = 0.0;
      outcome.stranded = true;
      break;
    }

    // Decide whether this segment has an idle window worth charging in.
    if (soc >= options_.min_soc_to_skip) continue;
    if (!rng_.NextBool(options_.stop_probability)) continue;

    ranker.RankInto(state, options_.k, ctx_, &table_);
    if (table_.empty()) continue;
    const OfferingEntry& offer = table_.top();
    if (offer.charger_id >= env_->chargers.size()) continue;
    const EvCharger& charger = env_->chargers[offer.charger_id];

    // Pay the derouting in energy and distance (realized components).
    EcTruth truth = env_->estimator->Truth(state, charger);
    double extra_m =
        truth.derouting * env_->estimator->options().max_derouting_m;
    outcome.derouting_km += extra_m / 1000.0;
    double deroute_kwh = ev.DriveEnergyKwh(extra_m);
    outcome.driving_energy_kwh += deroute_kwh;
    soc -= deroute_kwh / ev.battery_kwh();
    if (soc <= 0.0) {
      soc = 0.0;
      outcome.stranded = true;
      break;
    }

    ++outcome.charge_stops;
    SimTime arrival = state.time + truth.eta_s;
    if (truth.availability <= 0.0) {
      ++outcome.failed_stops;  // site full on arrival; no charge
      continue;
    }

    // Charge at the solar-backed rate actually available over the window.
    double solar_kwh = env_->energy->ActualEnergyKwh(
        charger, arrival, options_.idle_window_s);
    double offered_kw =
        solar_kwh / (options_.idle_window_s / kSecondsPerHour);
    EvModel::ChargeResult session =
        ev.SimulateCharge(soc, offered_kw, options_.idle_window_s);
    outcome.clean_energy_kwh += session.energy_kwh;
    soc = session.end_soc;
  }
  outcome.end_soc = soc;
  return outcome;
}

FleetOutcome FleetSimulator::Run(const std::vector<FleetVehicle>& fleet,
                                 Ranker& ranker) {
  FleetOutcome outcome;
  outcome.vehicles.reserve(fleet.size());
  for (const FleetVehicle& vehicle : fleet) {
    VehicleOutcome v = RunVehicle(vehicle, ranker);
    outcome.total_clean_kwh += v.clean_energy_kwh;
    outcome.total_derouting_km += v.derouting_km;
    outcome.total_driving_kwh += v.driving_energy_kwh;
    outcome.total_stops += v.charge_stops;
    outcome.total_failed_stops += v.failed_stops;
    if (v.stranded) ++outcome.stranded_vehicles;
    outcome.vehicles.push_back(std::move(v));
  }
  return outcome;
}

}  // namespace ecocharge
