#include "core/baselines.h"

#include <algorithm>

namespace ecocharge {

namespace {

/// Builds an exact-valued offering entry from realized components.
OfferingEntry MakeTruthEntry(ChargerId id, const EcTruth& truth,
                             const ScoreWeights& weights) {
  OfferingEntry e;
  e.charger_id = id;
  double sc = ComputeExactScore(truth.level, truth.availability,
                                truth.derouting, weights);
  e.score = ScorePair{sc, sc};
  e.ecs.level = Interval::Exact(truth.level);
  e.ecs.availability = Interval::Exact(truth.availability);
  e.ecs.derouting = Interval::Exact(truth.derouting);
  e.ecs.eta_s = truth.eta_s;
  e.eta_s = truth.eta_s;
  return e;
}

OfferingTable MakeTable(const VehicleState& state,
                        std::vector<OfferingEntry> entries, size_t k) {
  SortOfferingEntries(entries);
  if (entries.size() > k) entries.resize(k);
  OfferingTable table;
  table.generated_at = state.time;
  table.location = state.position;
  table.segment_index = state.segment_index;
  table.entries = std::move(entries);
  return table;
}

}  // namespace

BruteForceRanker::BruteForceRanker(EcEstimator* estimator,
                                   const ScoreWeights& weights)
    : estimator_(estimator), weights_(weights) {}

OfferingTable BruteForceRanker::Rank(const VehicleState& state, size_t k) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<OfferingEntry> entries;
  entries.reserve(fleet.size());
  for (const EvCharger& charger : fleet) {
    EcTruth ref = estimator_->ReferenceComponents(state, charger);
    entries.push_back(MakeTruthEntry(charger.id, ref, weights_));
  }
  return MakeTable(state, std::move(entries), k);
}

QuadtreeRanker::QuadtreeRanker(EcEstimator* estimator,
                               const QuadTree* charger_index,
                               const ScoreWeights& weights,
                               size_t candidate_budget)
    : estimator_(estimator),
      charger_index_(charger_index),
      weights_(weights),
      candidate_budget_(candidate_budget) {}

OfferingTable QuadtreeRanker::Rank(const VehicleState& state, size_t k) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<Neighbor> nearest =
      charger_index_->Knn(state.position, std::max(candidate_budget_, k));
  std::vector<OfferingEntry> entries;
  entries.reserve(nearest.size());
  for (const Neighbor& n : nearest) {
    if (n.id >= fleet.size()) continue;
    EcTruth ref = estimator_->ReferenceComponents(state, fleet[n.id]);
    entries.push_back(MakeTruthEntry(n.id, ref, weights_));
  }
  return MakeTable(state, std::move(entries), k);
}

RandomRanker::RandomRanker(EcEstimator* estimator,
                           const QuadTree* charger_index, double radius_m,
                           uint64_t seed)
    : estimator_(estimator),
      charger_index_(charger_index),
      radius_m_(radius_m),
      seed_(seed),
      rng_(seed) {}

OfferingTable RandomRanker::Rank(const VehicleState& state, size_t k) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  std::vector<Neighbor> in_range =
      charger_index_->RangeSearch(state.position, radius_m_);
  std::vector<uint32_t> ids;
  ids.reserve(in_range.size());
  for (const Neighbor& n : in_range) ids.push_back(n.id);
  rng_.Shuffle(ids);
  if (ids.size() > k) ids.resize(k);

  std::vector<OfferingEntry> entries;
  entries.reserve(ids.size());
  for (uint32_t id : ids) {
    if (id >= fleet.size()) continue;
    // The random method does not evaluate objectives; fill the entry with
    // cheap estimated intervals so the table still carries ETA context.
    OfferingEntry e;
    e.charger_id = id;
    e.ecs = estimator_->EstimateIntervals(state, fleet[id]);
    e.score = ScorePair{0.0, 0.0};  // deliberately unranked
    e.eta_s = e.ecs.eta_s;
    entries.push_back(e);
  }
  OfferingTable table;
  table.generated_at = state.time;
  table.location = state.position;
  table.segment_index = state.segment_index;
  table.entries = std::move(entries);
  return table;
}

}  // namespace ecocharge
