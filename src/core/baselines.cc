#include "core/baselines.h"

#include <algorithm>

namespace ecocharge {

namespace {

/// Builds an exact-valued offering entry from realized components.
OfferingEntry MakeTruthEntry(ChargerId id, const EcTruth& truth,
                             const ScoreWeights& weights) {
  OfferingEntry e;
  e.charger_id = id;
  double sc = ComputeExactScore(truth.level, truth.availability,
                                truth.derouting, weights);
  e.score = ScorePair{sc, sc};
  e.ecs.level = Interval::Exact(truth.level);
  e.ecs.availability = Interval::Exact(truth.availability);
  e.ecs.derouting = Interval::Exact(truth.derouting);
  e.ecs.eta_s = truth.eta_s;
  e.ecs.degraded = truth.degraded;
  e.eta_s = truth.eta_s;
  return e;
}

void StartTable(const VehicleState& state, OfferingTable* out) {
  out->generated_at = state.time;
  out->location = state.position;
  out->segment_index = state.segment_index;
  out->adapted_from_cache = false;
  out->degraded = false;
  out->entries.clear();
}

void FinishTable(size_t k, OfferingTable* out) {
  SortOfferingEntriesTopK(out->entries, k);
  for (const OfferingEntry& e : out->entries) {
    out->NoteEntryDegradation(e.ecs);
  }
}

}  // namespace

BruteForceRanker::BruteForceRanker(EcEstimator* estimator,
                                   const ScoreWeights& weights)
    : estimator_(estimator), weights_(weights) {}

void BruteForceRanker::RankInto(const VehicleState& state, size_t k,
                                QueryContext& /*ctx*/, OfferingTable* out) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  StartTable(state, out);
  out->entries.reserve(fleet.size());
  for (const EvCharger& charger : fleet) {
    EcTruth ref = estimator_->ReferenceComponents(state, charger);
    out->entries.push_back(MakeTruthEntry(charger.id, ref, weights_));
  }
  FinishTable(k, out);
}

QuadtreeRanker::QuadtreeRanker(EcEstimator* estimator,
                               const SpatialIndex* charger_index,
                               const ScoreWeights& weights,
                               size_t candidate_budget)
    : estimator_(estimator),
      charger_index_(charger_index),
      weights_(weights),
      candidate_budget_(candidate_budget) {}

void QuadtreeRanker::RankInto(const VehicleState& state, size_t k,
                              QueryContext& ctx, OfferingTable* out) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  charger_index_->KnnInto(state.position, std::max(candidate_budget_, k),
                          &ctx.spatial, &ctx.neighbors);
  StartTable(state, out);
  out->entries.reserve(ctx.neighbors.size());
  for (const Neighbor& n : ctx.neighbors) {
    if (n.id >= fleet.size()) continue;
    EcTruth ref = estimator_->ReferenceComponents(state, fleet[n.id]);
    out->entries.push_back(MakeTruthEntry(n.id, ref, weights_));
  }
  FinishTable(k, out);
}

RandomRanker::RandomRanker(EcEstimator* estimator,
                           const SpatialIndex* charger_index, double radius_m,
                           uint64_t seed)
    : estimator_(estimator),
      charger_index_(charger_index),
      radius_m_(radius_m),
      seed_(seed),
      rng_(seed) {}

void RandomRanker::RankInto(const VehicleState& state, size_t k,
                            QueryContext& ctx, OfferingTable* out) {
  const std::vector<EvCharger>& fleet = estimator_->fleet();
  charger_index_->RangeSearchInto(state.position, radius_m_, &ctx.spatial,
                                  &ctx.neighbors);
  std::vector<uint32_t>& ids = ctx.candidates;
  ids.clear();
  ids.reserve(ctx.neighbors.size());
  for (const Neighbor& n : ctx.neighbors) ids.push_back(n.id);
  rng_.Shuffle(ids);
  if (ids.size() > k) ids.resize(k);

  StartTable(state, out);
  out->entries.reserve(ids.size());
  for (uint32_t id : ids) {
    if (id >= fleet.size()) continue;
    // The random method does not evaluate objectives; fill the entry with
    // cheap estimated intervals so the table still carries ETA context.
    OfferingEntry e;
    e.charger_id = id;
    e.ecs = estimator_->EstimateIntervals(state, fleet[id]);
    e.score = ScorePair{0.0, 0.0};  // deliberately unranked
    e.eta_s = e.ecs.eta_s;
    out->NoteEntryDegradation(e.ecs);
    out->entries.push_back(e);
  }
}

}  // namespace ecocharge
