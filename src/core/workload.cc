#include "core/workload.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace ecocharge {

namespace {

/// Timestamp of the trajectory when `arc_s` meters have been traveled.
SimTime TimeAtArcLength(const Trajectory& traj, double arc_s) {
  double acc = 0.0;
  for (size_t i = 1; i < traj.size(); ++i) {
    double hop = Distance(traj[i - 1].position, traj[i].position);
    if (acc + hop >= arc_s && hop > 0.0) {
      double u = (arc_s - acc) / hop;
      return traj[i - 1].time + u * (traj[i].time - traj[i - 1].time);
    }
    acc += hop;
  }
  return traj.EndTime();
}

}  // namespace

std::vector<VehicleState> TripStates(const RoadNetwork& network,
                                     const Trajectory& trajectory,
                                     double segment_length_m,
                                     double charge_window_s) {
  std::vector<VehicleState> states;
  if (trajectory.size() < 2) return states;
  Polyline trip = trajectory.AsPolyline();
  std::vector<TripSegment> segments = SegmentTrip(trip, segment_length_m);
  for (size_t i = 0; i < segments.size(); ++i) {
    const TripSegment& seg = segments[i];
    VehicleState state;
    state.position = seg.start_point;
    state.node = network.NearestNode(state.position);
    state.time = TimeAtArcLength(trajectory, seg.start_s);
    state.return_point_a = seg.end_point;
    state.return_point_b =
        i + 1 < segments.size() ? segments[i + 1].end_point : seg.end_point;
    state.return_node_a = network.NearestNode(state.return_point_a);
    state.return_node_b = network.NearestNode(state.return_point_b);
    state.charge_window_s = charge_window_s;
    state.segment_index = i;
    state.trip_id = trajectory.object_id();
    states.push_back(state);
  }
  return states;
}

std::vector<VehicleState> BuildWorkload(const Dataset& dataset,
                                        const WorkloadOptions& options) {
  std::vector<VehicleState> workload;
  if (dataset.trajectories.empty() || !dataset.network) return workload;

  std::vector<size_t> order(dataset.trajectories.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(order);

  size_t trips = std::min(options.max_trips, order.size());
  for (size_t t = 0; t < trips && workload.size() < options.max_states; ++t) {
    std::vector<VehicleState> states =
        TripStates(*dataset.network, dataset.trajectories[order[t]],
                   options.segment_length_m, options.charge_window_s);
    for (VehicleState& s : states) {
      if (workload.size() >= options.max_states) break;
      workload.push_back(s);
    }
  }
  return workload;
}

}  // namespace ecocharge
