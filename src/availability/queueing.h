#ifndef ECOCHARGE_AVAILABILITY_QUEUEING_H_
#define ECOCHARGE_AVAILABILITY_QUEUEING_H_

namespace ecocharge {

/// \brief Erlang M/M/c steady-state formulas for charger-station queues.
///
/// An alternative, first-principles backing for the availability EC: a
/// station with c ports, Poisson arrivals at rate lambda, and exponential
/// service (charging) times at rate mu per port behaves as an M/M/c
/// queue. ErlangC gives the probability an arriving vehicle must wait —
/// i.e. 1 - ErlangC is the availability the popular-times histogram only
/// approximates. Used by tests to validate the occupancy simulator's
/// regime behaviour and available to users modeling stations directly.
namespace queueing {

/// Offered load a = lambda / mu (dimensionless Erlangs).
double OfferedLoad(double arrival_rate, double service_rate);

/// Erlang-B: probability all c servers are busy in a loss system
/// (arrivals that find no port leave). Computed with the stable
/// recurrence B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)).
double ErlangB(double offered_load, int servers);

/// Erlang-C: probability an arrival waits in an M/M/c queue with infinite
/// buffer. Requires offered_load < servers for stability; returns 1.0 for
/// unstable (saturated) inputs.
double ErlangC(double offered_load, int servers);

/// Expected waiting time in queue, seconds (W_q), for the given rates;
/// infinite (HUGE_VAL) when saturated.
double ExpectedWaitSeconds(double arrival_rate_per_s, double service_rate_per_s,
                           int servers);

/// Steady-state probability that at least one port is free in the loss
/// model — the queueing-theoretic "availability" of a station.
double AvailabilityProbability(double offered_load, int servers);

}  // namespace queueing
}  // namespace ecocharge

#endif  // ECOCHARGE_AVAILABILITY_QUEUEING_H_
