#include "availability/availability_service.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ecocharge {

AvailabilityService::AvailabilityService(uint64_t seed) : seed_(seed) {
  archetypes_.reserve(kNumArchetypes);
  for (int a = 0; a < kNumArchetypes; ++a) {
    archetypes_.push_back(PopularTimes::ForArchetype(
        static_cast<SiteArchetype>(a), seed ^ (0x51ED0000ULL + a)));
  }
}

const PopularTimes& AvailabilityService::TimetableFor(
    const EvCharger& charger) const {
  return archetypes_[charger.timetable_id % archetypes_.size()];
}

double AvailabilityService::ExpectedBusyness(const EvCharger& charger,
                                             SimTime t) const {
  return TimetableFor(charger).BusynessAt(t);
}

double AvailabilityService::ActualAvailability(const EvCharger& charger,
                                               SimTime t) const {
  double busyness = ExpectedBusyness(charger, t);
  // Occupied ports ~ Binomial(ports, busyness), drawn from a generator
  // keyed by (seed, charger, hour) so truth is stable within an hour and
  // identical across callers.
  uint64_t hour = static_cast<uint64_t>(std::max(0.0, t) / kSecondsPerHour);
  Rng draw(seed_ ^ (static_cast<uint64_t>(charger.id) + 1) *
                       0x9E3779B97F4A7C15ULL ^
           hour * 0xC2B2AE3D27D4EB4FULL);
  int ports = std::max(1, charger.num_ports);
  int occupied = 0;
  for (int p = 0; p < ports; ++p) {
    if (draw.NextBool(busyness)) ++occupied;
  }
  return static_cast<double>(ports - occupied) / static_cast<double>(ports);
}

AvailabilityForecast AvailabilityService::Forecast(const EvCharger& charger,
                                                   SimTime now,
                                                   SimTime target) const {
  double expected_free = 1.0 - ExpectedBusyness(charger, target);
  double lead_hours =
      std::max(0.0, target - now) / kSecondsPerHour;
  // Busy timetables are weekly aggregates: even a nowcast has substantial
  // spread; the band widens mildly with lead time.
  double half = 0.12 + 0.02 * std::min(lead_hours, 8.0);
  uint64_t now_h = static_cast<uint64_t>(std::max(0.0, now) / kSecondsPerHour);
  uint64_t tgt_h =
      static_cast<uint64_t>(std::max(0.0, target) / kSecondsPerHour);
  Rng noise(seed_ ^ (static_cast<uint64_t>(charger.id) + 1) *
                        0xD6E8FEB86659FD93ULL ^
            now_h * 0xA0761D6478BD642FULL ^ tgt_h * 0xE7037ED1A0B428DBULL);
  double center = expected_free + noise.NextGaussian(0.0, half * 0.3);
  AvailabilityForecast f;
  f.min = std::clamp(center - half, 0.0, 1.0);
  f.max = std::clamp(center + half, 0.0, 1.0);
  if (f.min > f.max) std::swap(f.min, f.max);
  return f;
}

}  // namespace ecocharge
