#include "availability/queueing.h"

#include <cmath>

namespace ecocharge {
namespace queueing {

double OfferedLoad(double arrival_rate, double service_rate) {
  if (service_rate <= 0.0) return HUGE_VAL;
  return arrival_rate / service_rate;
}

double ErlangB(double offered_load, int servers) {
  if (offered_load <= 0.0) return 0.0;
  if (servers <= 0) return 1.0;
  double b = 1.0;  // B with 0 servers
  for (int k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double ErlangC(double offered_load, int servers) {
  if (offered_load <= 0.0) return 0.0;
  if (servers <= 0 || offered_load >= static_cast<double>(servers)) {
    return 1.0;  // saturated: every arrival waits
  }
  double b = ErlangB(offered_load, servers);
  double c = static_cast<double>(servers);
  double rho = offered_load / c;
  return b / (1.0 - rho * (1.0 - b));
}

double ExpectedWaitSeconds(double arrival_rate_per_s,
                           double service_rate_per_s, int servers) {
  double a = OfferedLoad(arrival_rate_per_s, service_rate_per_s);
  double c = static_cast<double>(servers);
  if (servers <= 0 || a >= c) return HUGE_VAL;
  double pw = ErlangC(a, servers);
  return pw / (c * service_rate_per_s - arrival_rate_per_s);
}

double AvailabilityProbability(double offered_load, int servers) {
  return 1.0 - ErlangB(offered_load, servers);
}

}  // namespace queueing
}  // namespace ecocharge
