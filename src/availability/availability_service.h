#ifndef ECOCHARGE_AVAILABILITY_AVAILABILITY_SERVICE_H_
#define ECOCHARGE_AVAILABILITY_AVAILABILITY_SERVICE_H_

#include <cstdint>
#include <vector>

#include "availability/popular_times.h"
#include "energy/charger.h"

namespace ecocharge {

/// \brief Min/max band for the availability estimated component A.
struct AvailabilityForecast {
  double min = 0.0;  ///< lower bound on the free-port fraction
  double max = 1.0;  ///< upper bound
};

/// \brief Produces the A estimated component: how likely a charger is to
/// have a free port at the vehicle's ETA.
///
/// Ground truth: each charger's occupied-port count at hour granularity is
/// a deterministic pseudo-random draw (hash of charger, hour) around its
/// popular-times busyness — a site with busyness 0.8 usually has few free
/// ports. Availability = free ports / total ports in [0, 1], 1 = free.
/// The forecast band widens with lead time like the busy-timetable
/// estimates the paper takes from Google Maps POI data.
///
/// Thread safety: the archetype histograms are built once in the
/// constructor and never mutated; every query method is const and pure in
/// (seed_, inputs), so concurrent reads need no synchronization.
class AvailabilityService {
 public:
  /// \param seed drives both per-site histogram jitter and occupancy draws
  explicit AvailabilityService(uint64_t seed);

  /// Realized free-port fraction of `charger` at time `t`.
  double ActualAvailability(const EvCharger& charger, SimTime t) const;

  /// Interval estimate issued at `now` for time `target`; deterministic in
  /// (seed, charger, now-hour, target-hour).
  AvailabilityForecast Forecast(const EvCharger& charger, SimTime now,
                                SimTime target) const;

  /// Expected busyness of the charger's archetype at `t` (test hook).
  double ExpectedBusyness(const EvCharger& charger, SimTime t) const;

 private:
  const PopularTimes& TimetableFor(const EvCharger& charger) const;

  uint64_t seed_;
  std::vector<PopularTimes> archetypes_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_AVAILABILITY_AVAILABILITY_SERVICE_H_
