#ifndef ECOCHARGE_AVAILABILITY_POPULAR_TIMES_H_
#define ECOCHARGE_AVAILABILITY_POPULAR_TIMES_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/simtime.h"

namespace ecocharge {

/// \brief Site archetypes with distinct weekly demand shapes; the
/// EvCharger::timetable_id indexes into these.
enum class SiteArchetype : uint8_t {
  kDowntown = 0,     ///< office-hours peak, quiet weekend mornings
  kCommuterHub = 1,  ///< sharp morning and evening weekday spikes
  kShoppingMall = 2, ///< midday/afternoon peak, strong weekends
  kHighwayRest = 3,  ///< flat with mild daylight bump, no weekday pattern
};

inline constexpr int kNumArchetypes = 4;

std::string_view SiteArchetypeName(SiteArchetype a);

/// \brief A Google-Maps-style "popular times" weekly histogram: expected
/// busyness in [0, 1] for each of the 168 hours of a week.
class PopularTimes {
 public:
  /// The canonical histogram of an archetype, with site-specific noise
  /// drawn from `seed` (amplitude and phase jitter).
  static PopularTimes ForArchetype(SiteArchetype archetype, uint64_t seed);

  /// Expected busyness at time `t`, linearly interpolated between hours.
  double BusynessAt(SimTime t) const;

  /// Raw hourly value, hour_of_week in [0, 168).
  double bucket(int hour_of_week) const { return buckets_[hour_of_week]; }

 private:
  std::array<double, 168> buckets_{};
};

}  // namespace ecocharge

#endif  // ECOCHARGE_AVAILABILITY_POPULAR_TIMES_H_
