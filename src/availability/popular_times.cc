#include "availability/popular_times.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ecocharge {

std::string_view SiteArchetypeName(SiteArchetype a) {
  switch (a) {
    case SiteArchetype::kDowntown:
      return "downtown";
    case SiteArchetype::kCommuterHub:
      return "commuter-hub";
    case SiteArchetype::kShoppingMall:
      return "shopping-mall";
    case SiteArchetype::kHighwayRest:
      return "highway-rest";
  }
  return "?";
}

namespace {

/// Gaussian bump centered at `peak_hour` with width `sigma` hours.
double Bump(double hour, double peak_hour, double sigma) {
  double d = hour - peak_hour;
  return std::exp(-d * d / (2.0 * sigma * sigma));
}

double ArchetypeBusyness(SiteArchetype a, int day, double hour) {
  bool weekend = day >= 5;
  switch (a) {
    case SiteArchetype::kDowntown: {
      double base = weekend ? 0.15 : 0.25;
      double office = weekend ? 0.2 : 0.6;
      return base + office * Bump(hour, 13.0, 3.5);
    }
    case SiteArchetype::kCommuterHub: {
      if (weekend) return 0.1 + 0.15 * Bump(hour, 14.0, 5.0);
      return 0.1 + 0.7 * Bump(hour, 8.0, 1.5) + 0.65 * Bump(hour, 17.5, 1.8);
    }
    case SiteArchetype::kShoppingMall: {
      double weekend_boost = weekend ? 0.25 : 0.0;
      return 0.1 + weekend_boost + 0.55 * Bump(hour, 15.0, 3.0);
    }
    case SiteArchetype::kHighwayRest: {
      return 0.2 + 0.2 * Bump(hour, 13.0, 5.0);
    }
  }
  return 0.2;
}

}  // namespace

PopularTimes PopularTimes::ForArchetype(SiteArchetype archetype,
                                        uint64_t seed) {
  Rng rng(seed);
  double amplitude = rng.NextDouble(0.8, 1.2);
  double phase = rng.NextDouble(-1.0, 1.0);  // hours of peak shift
  PopularTimes pt;
  for (int h = 0; h < 168; ++h) {
    int day = h / 24;
    double hour = static_cast<double>(h % 24) + 0.5 + phase;
    if (hour >= 24.0) hour -= 24.0;
    if (hour < 0.0) hour += 24.0;
    double v = amplitude * ArchetypeBusyness(archetype, day, hour);
    pt.buckets_[h] = std::clamp(v, 0.0, 1.0);
  }
  return pt;
}

double PopularTimes::BusynessAt(SimTime t) const {
  double week_seconds = std::fmod(t, kSecondsPerWeek);
  if (week_seconds < 0.0) week_seconds += kSecondsPerWeek;
  double hour_pos = week_seconds / kSecondsPerHour;  // [0, 168)
  int h0 = static_cast<int>(hour_pos) % 168;
  int h1 = (h0 + 1) % 168;
  double u = hour_pos - std::floor(hour_pos);
  return buckets_[h0] * (1.0 - u) + buckets_[h1] * u;
}

}  // namespace ecocharge
