// ecocharge_cli — command-line front end for the library.
//
// Subcommands:
//   gen-network    synthesize a road network and write it as .ecg text
//   gen-dataset    synthesize one of the four paper datasets (network +
//                  trajectories) to files
//   graph build    run a generator spec and write a binary mmap snapshot
//   graph info     print the header/section layout of a snapshot
//   rank           one-shot CkNN-EC query at a position/time
//   simulate       run the renewable-hoarding fleet simulation
//   serve          push a wire-protocol workload through the concurrent
//                  OfferingServer and report throughput (--statsz adds a
//                  JSON metrics dump)
//   stats          run a small workload and print the observability
//                  metric catalog (statsz text or JSON)
//   info           print library and dataset information
//
// Run with no arguments for usage.

#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "core/baselines.h"
#include "core/fleet_sim.h"
#include "fleet/fleet_server.h"
#include "core/load_balancer.h"
#include "core/workload.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/landmarks.h"
#include "graph/shortest_path.h"
#include "ch/ch_customize.h"
#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "obs/statsz.h"
#include "server/offering_server.h"
#include "traj/io.h"

namespace ecocharge {
namespace {

/// Minimal --flag parser. A flag followed by a non-flag token takes that
/// token as its value; a flag followed by another flag (or the end of the
/// line) is boolean and stores "1". Values may be negative numbers — only
/// a leading "--" marks a flag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        values_[argv[i] + 2] = "1";
      }
    }
  }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  /// Signed parse for flags that must reject negative values: GetU64
  /// would wrap "--threads -2" into a huge count instead of an error.
  int64_t GetI64(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  bool GetBool(const std::string& key) const {
    auto it = values_.find(key);
    return it != values_.end() && it->second != "0";
  }
  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

 private:
  std::map<std::string, std::string> values_;
};

Result<DatasetKind> ParseDatasetKind(const std::string& name) {
  for (DatasetKind kind : AllDatasetKinds()) {
    std::string lower(DatasetName(kind));
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string needle = name;
    for (char& c : needle) c = static_cast<char>(std::tolower(c));
    needle.erase(std::remove(needle.begin(), needle.end(), '-'),
                 needle.end());
    lower.erase(std::remove(lower.begin(), lower.end(), '-'), lower.end());
    if (lower == needle) return kind;
  }
  return Status::InvalidArgument("unknown dataset '" + name +
                                 "' (oldenburg|california|tdrive|geolife)");
}

int Usage() {
  std::cout <<
      R"(ecocharge_cli — EcoCharge / CkNN-EC command line

  gen-network  --style grid|radial|geometric|corridor --out FILE.ecg
               [--seed N]
  gen-dataset  --kind oldenburg|california|tdrive|geolife --scale 0.01
               --out PREFIX [--seed N]      (writes PREFIX.ecg, PREFIX.ect)
  graph build  --spec "type=grid;nx=1000;ny=1000;seed=7" --out FILE.ecgs
               [--landmarks N]
               (spec types: grid|rgg|hyperbolic stream in bounded-memory
               chunks; radial|corridor build in memory. The snapshot is a
               versioned binary that mmap-loads in O(1); --landmarks also
               precomputes and embeds N ALT landmark tables)
  graph info   --in FILE.ecgs [--load]
               (print a snapshot's version, counts, bounds, and sections —
               including landmark/CH section presence; --load also
               mmap-loads the full graph, reports the load time, and runs
               a sanity sweep)
  graph ch     --in FILE.ecgs --out FILE.ecgs [--ch-threads N]
               (contract the snapshot's network and write a copy that also
               embeds the hierarchy: rank array + upward/downward shortcut
               CSR, mmap-loaded zero-copy by --derouting ch; landmark
               tables in the input are preserved; the summary also times
               one full customization sweep with --ch-threads workers,
               -1 = hardware concurrency, 0 = serial)
  rank         --kind KIND [--chargers N] [--k K] [--radius-km R]
               [--hour H] [--seed N] [--index BACKEND] [--landmarks N]
               [--no-batch-derouting] [--no-simd]
               [--graph-snapshot FILE.ecgs] [--derouting ch|exact]
               [--ch-threads N]
               (query at a sample trip state; --landmarks builds N ALT
               landmarks that order the refinement candidates by
               lower-bounded derouting cost; --ch-threads sets the CH
               customization worker count, -1 = hardware concurrency,
               0 = serial — bit-identical either way)
  simulate     --kind KIND [--vehicles N] [--chargers N] [--seed N]
               [--index BACKEND] [--no-batch-derouting] [--no-simd]
               (fleet hoarding: EcoCharge vs nearest-charger policies)
  serve        --threads N [--kind KIND] [--chargers N] [--clients N]
               [--requests N] [--queue-depth N] [--io-ms MS] [--seed N]
               [--statsz] [--statsz-period SEC]
               [--shards N] [--partition grid|bisect] [--corridor-cache]
               [--corridor-bucket-s SEC] [--corridor-prewarm N]
               [--refresh-every N]
               [--fault-p P] [--fault-spike-p P] [--fault-stall-p P]
               [--fault-seed N] [--retry-attempts N] [--deadline-ms MS]
               [--resilient] [--no-batch-derouting] [--no-simd]
               (--threads 0 = synchronous deterministic mode; --statsz
               prints a final JSON metrics dump to stdout, and with a
               period > 0 a live text dump to stderr every SEC seconds;
               any --fault-* probability > 0 injects deterministic
               upstream faults and serves through the resilient EIS —
               retries, circuit breakers, stale/climatological
               degradation; --resilient enables the resilient EIS with
               no injected faults; --shards N routes the workload through
               the fleet runtime — N geographic shards with --threads
               workers each, cross-shard handoff of Dynamic Cache state,
               and RCU world-epoch refreshes every --refresh-every
               requests; --corridor-cache shares Offering Tables across
               vehicles on the same corridor, bucketed by
               --corridor-bucket-s seconds of ETA, and --corridor-prewarm
               speculatively fills that many future ETA buckets after
               each corridor miss; rankings stay
               bit-identical to single-shard serving either way)
  stats        [--kind KIND] [--chargers N] [--requests N] [--threads N]
               [--format text|json] [--seed N] [--shards N]
               (run a small serving workload and print the metric catalog;
               --shards N prints the fleet section plus one per-shard
               statsz section per shard)
  info

  BACKEND: quadtree|rtree|grid|kdtree|linear (charger index; every backend
  produces identical rankings — the choice only affects query time)

  --no-batch-derouting: escape hatch that refines with one point-to-point
  search per candidate instead of the batched one-sweep-per-query path;
  rankings are bit-identical either way, only the query time changes.

  --no-simd (rank/simulate/serve): escape hatch that routes the filter/
  score phase through the scalar reference kernels instead of the SIMD
  hot path; rankings are bit-identical either way (the scalar path is the
  parity oracle), only the query time changes.

  --graph-snapshot (rank/simulate/serve/stats): mmap-load the road network
  from a `graph build` snapshot instead of synthesizing it; the dataset
  kind still shapes the trajectory workload.

  --derouting ch|exact (rank/simulate/serve/stats): exact-derouting
  backend. `ch` answers refinement legs over a contraction hierarchy
  (loaded from the snapshot's CH section when present, contracted at
  startup otherwise) with Offering Tables bit-identical to `exact`, the
  Dijkstra-sweep oracle (default).
)";
  return 2;
}

int GraphBuild(const Args& args) {
  std::string spec = args.Get("spec", "");
  if (spec.empty()) {
    std::cerr << "graph build needs --spec \"type=...;key=value;...\"\n";
    return 1;
  }
  std::string out = args.Get("out", "network.ecgs");
  auto network = GenerateNetwork(spec);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  std::unique_ptr<LandmarkIndex> landmarks;
  size_t num_landmarks = static_cast<size_t>(args.GetU64("landmarks", 0));
  if (num_landmarks > 0) {
    landmarks =
        std::make_unique<LandmarkIndex>(**network, num_landmarks);
  }
  Status st = SaveSnapshot(**network, out, landmarks.get());
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << (*network)->NumNodes()
            << " nodes, " << (*network)->NumEdges() << " edges";
  if (landmarks) std::cout << ", " << landmarks->num_landmarks()
                           << " landmarks";
  std::cout << ")\n";
  return 0;
}

int GraphInfo(const Args& args) {
  std::string in = args.Get("in", "");
  if (in.empty()) {
    std::cerr << "graph info needs --in FILE.ecgs\n";
    return 1;
  }
  auto info = ReadSnapshotInfo(in);
  if (!info.ok()) {
    std::cerr << info.status() << "\n";
    return 1;
  }
  std::cout << in << ": snapshot v" << info->version << "\n"
            << "  nodes:     " << info->num_nodes << "\n"
            << "  edges:     " << info->num_edges << "\n"
            << "  landmarks: " << info->num_landmarks << "\n";
  if (info->has_ch) {
    std::cout << "  ch:        yes (" << info->ch_up_arcs << " up arcs, "
              << info->ch_down_arcs << " down arcs)\n";
  } else {
    std::cout << "  ch:        no\n";
  }
  std::cout << "  bounds:    [" << info->bounds.min.x << ", "
            << info->bounds.min.y << "] - [" << info->bounds.max.x << ", "
            << info->bounds.max.y << "]\n"
            << "  file:      " << info->file_bytes << " bytes\n"
            << "  sections:\n";
  for (const auto& [id, bytes] : info->sections) {
    std::cout << "    " << SnapshotSectionName(id) << " (id " << id
              << "): " << bytes << " bytes\n";
  }
  if (args.GetBool("load")) {
    auto start = std::chrono::steady_clock::now();
    auto network = LoadSnapshot(in);
    if (!network.ok()) {
      std::cerr << network.status() << "\n";
      return 1;
    }
    double load_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    DijkstraSearch search(**network);
    size_t settled = search.OneToMany(0, 10000.0, LengthCost);
    std::cout << "  mmap load: " << load_ms << " ms ("
              << (*network)->NumNodes() << " nodes; sanity sweep from node "
              << "0 settled " << settled << " within 10 km)\n";
  }
  return 0;
}

int GraphCh(const Args& args) {
  std::string in = args.Get("in", "");
  std::string out = args.Get("out", "");
  if (in.empty() || out.empty()) {
    std::cerr << "graph ch needs --in FILE.ecgs --out FILE.ecgs\n";
    return 1;
  }
  auto loaded = LoadSnapshotWithAux(in);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  const RoadNetwork& network = *loaded->network;
  ChBuildStats stats;
  auto start = std::chrono::steady_clock::now();
  auto ch = BuildChIndex(network, &stats);
  if (!ch.ok()) {
    std::cerr << ch.status() << "\n";
    return 1;
  }
  double build_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  // Time one full metric customization of the freshly contracted
  // hierarchy (the per-bucket cost every serving process will pay): the
  // summary line then covers both preprocessing phases.
  int ch_threads = static_cast<int>(args.GetI64("ch-threads", -1));
  if (ch_threads < 0) {
    ch_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  ChCustomizer customizer(**ch, ch_threads);
  auto customize_start = std::chrono::steady_clock::now();
  customizer.Customize(kChLengthWeights);
  double customize_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    customize_start)
          .count();
  ChSnapshotViews views = ToSnapshotViews(*ch);
  Status st = SaveSnapshot(network, out, loaded->landmarks.get(), &views);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << network.NumNodes() << " nodes, "
            << network.NumEdges() << " edges, " << stats.shortcuts
            << " shortcuts; contracted in " << build_s << " s, "
            << stats.ordering_pops << " queue pops, max live degree "
            << stats.max_live_degree << "; customized in " << customize_s
            << " s (" << customizer.threads() << " threads, "
            << customizer.num_levels() << " levels, "
            << customizer.total_arcs() << " arcs)";
  if (loaded->landmarks) {
    std::cout << "; " << loaded->landmarks->num_landmarks()
              << " landmarks preserved";
  }
  std::cout << ")\n";
  return 0;
}

int GenNetwork(const Args& args) {
  std::string style = args.Get("style", "grid");
  std::string out = args.Get("out", "network.ecg");
  uint64_t seed = args.GetU64("seed", 1);
  Result<std::shared_ptr<RoadNetwork>> network =
      Status::InvalidArgument("unknown style: " + style);
  if (style == "grid") {
    GridNetworkOptions opts;
    opts.seed = seed;
    network = MakeGridNetwork(opts);
  } else if (style == "radial") {
    RadialCityOptions opts;
    opts.seed = seed;
    network = MakeRadialCity(opts);
  } else if (style == "geometric") {
    RandomGeometricOptions opts;
    opts.seed = seed;
    network = MakeRandomGeometric(opts);
  } else if (style == "corridor") {
    CorridorRegionOptions opts;
    opts.seed = seed;
    network = MakeCorridorRegion(opts);
  }
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  Status st = SaveRoadNetworkFile(*network.value(), out);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << network.value()->NumNodes()
            << " nodes, " << network.value()->NumEdges() << " edges)\n";
  return 0;
}

int GenDataset(const Args& args) {
  auto kind = ParseDatasetKind(args.Get("kind", "oldenburg"));
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 1;
  }
  DatasetOptions opts;
  opts.scale = args.GetDouble("scale", 0.01);
  opts.seed = args.GetU64("seed", 7);
  auto dataset = MakeDataset(kind.value(), opts);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::string prefix = args.Get("out", "dataset");
  Status st =
      SaveRoadNetworkFile(*dataset.value().network, prefix + ".ecg");
  if (st.ok()) {
    st = SaveTrajectoriesFile(dataset.value().trajectories, prefix + ".ect");
  }
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << prefix << ".ecg / " << prefix << ".ect ("
            << dataset.value().network->NumNodes() << " nodes, "
            << dataset.value().trajectories.size() << " trajectories)\n";
  return 0;
}

Result<std::unique_ptr<Environment>> BuildEnv(const Args& args) {
  ECOCHARGE_ASSIGN_OR_RETURN(DatasetKind kind,
                             ParseDatasetKind(args.Get("kind", "oldenburg")));
  EnvironmentOptions opts;
  opts.kind = kind;
  opts.dataset_scale = args.GetDouble("scale", 0.01);
  opts.num_chargers =
      static_cast<size_t>(args.GetU64("chargers", 500));
  opts.seed = args.GetU64("seed", 42);
  opts.num_landmarks = static_cast<size_t>(args.GetU64("landmarks", 0));
  opts.graph_snapshot = args.Get("graph-snapshot", "");
  const std::string backend = args.Get("derouting", "exact");
  if (backend == "ch") {
    opts.derouting_backend = DeroutingBackend::kCh;
  } else if (backend != "exact") {
    return Status::InvalidArgument("unknown derouting backend '" + backend +
                                   "' (ch|exact)");
  }
  opts.ch_threads = static_cast<int>(args.GetI64("ch-threads", -1));
  ECOCHARGE_ASSIGN_OR_RETURN(
      opts.index_kind, ParseSpatialIndexKind(args.Get("index", "quadtree")));
  return MakeEnvironment(opts);
}

/// The EcoCharge options shared by every ranking subcommand: currently
/// just the batched-refinement escape hatch plus any landmarks the
/// environment carries.
EcoChargeOptions EcoOptionsFor(const Args& args, const Environment& env) {
  EcoChargeOptions opts;
  opts.batch_derouting = !args.GetBool("no-batch-derouting");
  opts.use_simd = !args.GetBool("no-simd");
  opts.landmarks = env.landmarks.get();
  opts.ch = env.ch.get();
  return opts;
}

int Rank(const Args& args) {
  auto env_result = BuildEnv(args);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();
  size_t k = static_cast<size_t>(args.GetU64("k", 3));
  EcoChargeOptions eco_opts = EcoOptionsFor(args, *env);
  eco_opts.radius_m = args.GetDouble("radius-km", 50.0) * 1000.0;
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(),
                      ScoreWeights::AWE(), eco_opts);

  std::vector<VehicleState> states =
      TripStates(*env->dataset.network, env->dataset.trajectories.front(),
                 4000.0, kSecondsPerHour);
  if (states.empty()) {
    std::cerr << "no vehicle states in dataset\n";
    return 1;
  }
  VehicleState state = states[std::min<size_t>(1, states.size() - 1)];
  double hour = args.GetDouble("hour", -1.0);
  if (hour >= 0.0) state.time = hour * kSecondsPerHour;
  OfferingTable table = eco.Rank(state, k);
  std::cout << table.ToString(env->chargers);
  return 0;
}

int Simulate(const Args& args) {
  auto env_result = BuildEnv(args);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();
  FleetSimOptions sim_opts;
  sim_opts.seed = args.GetU64("seed", 42) ^ 0x5157ULL;
  FleetSimulator sim(env.get(), sim_opts);
  auto fleet = sim.MakeFleet(static_cast<size_t>(args.GetU64("vehicles", 30)));

  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(),
                      ScoreWeights::AWE(), EcoOptionsFor(args, *env));
  QuadtreeRanker nearest(env->estimator.get(), env->charger_index.get(),
                         ScoreWeights::AWE(), 1);
  FleetOutcome with_eco = sim.Run(fleet, eco);
  FleetOutcome with_nearest = sim.Run(fleet, nearest);
  auto report = [](const char* name, const FleetOutcome& o) {
    std::cout << name << ": clean=" << o.total_clean_kwh
              << " kWh, co2_avoided=" << o.Co2AvoidedKg()
              << " kg, derouting=" << o.total_derouting_km
              << " km, full_on_arrival=" << o.total_failed_stops << "/"
              << o.total_stops << "\n";
  };
  std::cout << fleet.size() << " vehicles on " << env->dataset.name << "\n";
  report("EcoCharge      ", with_eco);
  report("Nearest charger", with_nearest);
  return 0;
}

/// Validates the serve flags up front so misconfigurations fail with a
/// clear kInvalidArgument instead of being silently coerced (an unsigned
/// parse would wrap "--threads -2" into a huge worker count) or starting
/// a busy-looping statsz thread (period 0).
Status ValidateServeArgs(const Args& args) {
  if (args.GetI64("threads", 0) < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = synchronous deterministic mode)");
  }
  if (args.GetI64("queue-depth", 256) <= 0) {
    return Status::InvalidArgument("--queue-depth must be a positive count");
  }
  if (args.GetI64("clients", 8) <= 0) {
    return Status::InvalidArgument("--clients must be a positive count");
  }
  if (args.GetI64("requests", 64) <= 0) {
    return Status::InvalidArgument("--requests must be a positive count");
  }
  if (args.Has("statsz-period") &&
      args.GetDouble("statsz-period", 0.0) <= 0.0) {
    return Status::InvalidArgument(
        "--statsz-period must be a positive number of seconds");
  }
  if (args.GetDouble("io-ms", 0.0) < 0.0) {
    return Status::InvalidArgument("--io-ms must be >= 0");
  }
  double fault_p = args.GetDouble("fault-p", 0.0);
  if (fault_p < 0.0 || fault_p > 1.0) {
    return Status::InvalidArgument("--fault-p must be a probability in [0,1]");
  }
  double spike_p = args.GetDouble("fault-spike-p", 0.0);
  if (spike_p < 0.0 || spike_p > 1.0) {
    return Status::InvalidArgument(
        "--fault-spike-p must be a probability in [0,1]");
  }
  double stall_p = args.GetDouble("fault-stall-p", 0.0);
  if (stall_p < 0.0 || stall_p > 1.0) {
    return Status::InvalidArgument(
        "--fault-stall-p must be a probability in [0,1]");
  }
  if (args.GetI64("retry-attempts", 4) < 1) {
    return Status::InvalidArgument("--retry-attempts must be >= 1");
  }
  if (args.GetDouble("deadline-ms", 250.0) <= 0.0) {
    return Status::InvalidArgument("--deadline-ms must be > 0");
  }
  if (args.GetI64("shards", 1) < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  std::string partition = args.Get("partition", "bisect");
  if (partition != "bisect" && partition != "grid") {
    return Status::InvalidArgument("--partition must be grid or bisect");
  }
  if (args.Has("corridor-bucket-s") &&
      args.GetDouble("corridor-bucket-s", 0.0) <= 0.0) {
    return Status::InvalidArgument(
        "--corridor-bucket-s must be a positive number of seconds");
  }
  if (args.GetI64("refresh-every", 0) < 0) {
    return Status::InvalidArgument(
        "--refresh-every must be >= 0 requests (0 = no refreshes)");
  }
  return Status::OK();
}

/// Fleet-runtime serve path (--shards / --corridor-cache): routes the
/// wire workload through a FleetServer and reports per-shard serving,
/// handoff, corridor, and epoch accounting.
int ServeFleet(const Args& args, std::unique_ptr<Environment> env,
               const OfferingServerOptions& server_opts,
               const std::vector<VehicleState>& states) {
  fleet::FleetServerOptions fleet_opts;
  fleet_opts.partition.num_shards =
      static_cast<size_t>(args.GetU64("shards", 1));
  fleet_opts.partition.strategy = args.Get("partition", "bisect") == "grid"
                                      ? fleet::PartitionStrategy::kGrid
                                      : fleet::PartitionStrategy::kBisection;
  fleet_opts.threads_per_shard = static_cast<int>(args.GetI64("threads", 0));
  fleet_opts.corridor_cache = args.GetBool("corridor-cache");
  if (args.Has("corridor-bucket-s")) {
    fleet_opts.corridor.eta_bucket_s = args.GetDouble("corridor-bucket-s",
                                                      300.0);
  }
  fleet_opts.corridor.prewarm_buckets =
      static_cast<size_t>(args.GetU64("corridor-prewarm", 0));
  fleet_opts.server = server_opts;
  auto fleet_result = fleet::FleetServer::Create(
      env.get(), ScoreWeights::AWE(), EcoOptionsFor(args, *env), fleet_opts);
  if (!fleet_result.ok()) {
    std::cerr << fleet_result.status() << "\n";
    return 1;
  }
  auto fleet = std::move(fleet_result).MoveValueUnsafe();

  uint64_t num_clients = args.GetU64("clients", 8);
  uint64_t num_requests = args.GetU64("requests", 64);
  uint64_t refresh_every = args.GetU64("refresh-every", 0);

  bool statsz = args.GetBool("statsz");
  double statsz_period_s = args.GetDouble("statsz-period", 0.0);
  std::atomic<bool> statsz_stop{false};
  std::thread statsz_thread;
  if (statsz_period_s > 0.0) {
    statsz_thread = std::thread([&fleet, &statsz_stop, statsz_period_s] {
      while (!statsz_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(statsz_period_s));
        if (statsz_stop.load(std::memory_order_acquire)) break;
        std::cerr << fleet->StatszAllText();
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_requests; ++i) {
    if (refresh_every > 0 && i > 0 && i % refresh_every == 0) {
      // Rotate through the upstreams so every refresh kind gets
      // exercised; publishes interleave with in-flight requests.
      fleet->PublishRefresh(
          static_cast<fleet::RefreshKind>((i / refresh_every) % 3),
          states[i % states.size()].time);
    }
    OfferingRequest request;
    request.state = states[i % states.size()];
    request.k = 3;
    Status st = fleet->SubmitWire(i % num_clients,
                                  EncodeOfferingRequest(request),
                                  [](const Result<std::string>&) {});
    if (!st.ok() && st.code() != StatusCode::kUnavailable) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  fleet->Drain();
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  fleet::FleetStats stats = fleet->Stats();
  std::cout << "served " << stats.totals.served << "/" << num_requests
            << " requests (" << stats.totals.rejected << " shed) across "
            << fleet->num_shards() << " shard(s) in " << elapsed_s << " s\n"
            << "throughput: "
            << (elapsed_s > 0.0 ? stats.totals.served / elapsed_s : 0.0)
            << " req/s\n";
  for (size_t i = 0; i < fleet->num_shards(); ++i) {
    std::cout << "shard " << i << ": served=" << stats.per_shard[i].served
              << " shed=" << stats.per_shard[i].rejected << " chargers="
              << fleet->partition().chargers_in(static_cast<uint32_t>(i))
              << "\n";
  }
  std::cout << "cross-shard handoffs: " << stats.clients.handoffs
            << " (ticket waits: " << stats.clients.waits << ")\n";
  if (fleet->corridor_cache()) {
    uint64_t lookups = stats.corridor.hits + stats.corridor.misses;
    std::cout << "corridor cache: hits=" << stats.corridor.hits
              << " misses=" << stats.corridor.misses
              << " inserts=" << stats.corridor_inserts
              << " prewarmed=" << stats.corridor_prewarmed << " hit-rate="
              << (lookups > 0
                      ? static_cast<double>(stats.corridor.hits) / lookups
                      : 0.0)
              << "\n";
  } else {
    std::cout << "dynamic-cache adaptations: "
              << stats.totals.cache_adaptations << "\n";
  }
  std::cout << "world epoch: " << stats.epoch << "\n";
  if (statsz_thread.joinable()) {
    statsz_stop.store(true, std::memory_order_release);
    statsz_thread.join();
  }
  if (statsz) std::cout << fleet->StatszAllJson() << "\n";
  return 0;
}

int Serve(const Args& args) {
  if (Status st = ValidateServeArgs(args); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto env_result = BuildEnv(args);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();

  WorkloadOptions wo;
  wo.max_trips = 8;
  wo.max_states = 16;
  wo.seed = args.GetU64("seed", 42) ^ 0xBEEFULL;
  std::vector<VehicleState> states = BuildWorkload(env->dataset, wo);
  if (states.empty()) {
    std::cerr << "no vehicle states in dataset\n";
    return 1;
  }

  OfferingServerOptions server_opts;
  server_opts.threads = static_cast<int>(args.GetI64("threads", 0));
  server_opts.queue_depth = static_cast<size_t>(args.GetI64("queue-depth",
                                                            256));
  server_opts.simulated_io_ms = args.GetDouble("io-ms", 0.0);

  // Fault-injection flags: any non-zero probability switches the shared
  // EIS to the resilient decorator with that profile on every upstream.
  double fault_p = args.GetDouble("fault-p", 0.0);
  double spike_p = args.GetDouble("fault-spike-p", 0.0);
  double stall_p = args.GetDouble("fault-stall-p", 0.0);
  bool faulted = fault_p > 0.0 || spike_p > 0.0 || stall_p > 0.0;
  if (faulted || args.GetBool("resilient")) {
    server_opts.resilient_eis = true;
    resilience::FaultProfile profile;
    profile.error_probability = fault_p;
    profile.spike_probability = spike_p;
    profile.stall_probability = stall_p;
    server_opts.resilience.faults = resilience::FaultInjectorOptions::Uniform(
        profile, args.GetU64("fault-seed", 0x0FA117ULL));
    server_opts.resilience.retry.max_attempts =
        static_cast<int>(args.GetI64("retry-attempts", 4));
    server_opts.request_deadline_ms = args.GetDouble("deadline-ms", 250.0);
  }

  // --shards / --corridor-cache switch to the fleet runtime; a single
  // un-sharded OfferingServer serves the classic path below.
  if (args.Has("shards") || args.GetBool("corridor-cache")) {
    return ServeFleet(args, std::move(env), server_opts, states);
  }
  OfferingServer server(env.get(), ScoreWeights::AWE(),
                        EcoOptionsFor(args, *env), server_opts);

  uint64_t num_clients = args.GetU64("clients", 8);
  uint64_t num_requests = args.GetU64("requests", 64);

  // --statsz: final JSON dump on stdout; with a period, also a live text
  // dump on stderr while the workload runs (the "statsz page" of the
  // serving runtime).
  bool statsz = args.GetBool("statsz");
  double statsz_period_s = args.GetDouble("statsz-period", 0.0);
  std::atomic<bool> statsz_stop{false};
  std::thread statsz_thread;
  if (statsz_period_s > 0.0) {
    statsz_thread = std::thread([&server, &statsz_stop, statsz_period_s] {
      while (!statsz_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(statsz_period_s));
        if (statsz_stop.load(std::memory_order_acquire)) break;
        std::cerr << obs::StatszText(server.metrics());
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_requests; ++i) {
    OfferingRequest request;
    request.state = states[i % states.size()];
    request.k = 3;
    Status st = server.SubmitWire(i % num_clients,
                                  EncodeOfferingRequest(request),
                                  [](const Result<std::string>&) {});
    // kUnavailable = admission control shed the request; that is the
    // intended overload behavior, not an error.
    if (!st.ok() && st.code() != StatusCode::kUnavailable) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  server.Drain();
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  OfferingServerStats stats = server.Stats();
  EisCallStats eis = server.information_server().Snapshot();
  std::cout << "served " << stats.served << "/" << num_requests
            << " requests (" << stats.rejected << " shed) with "
            << server.threads() << " worker thread(s) in " << elapsed_s
            << " s\n"
            << "throughput: " << (elapsed_s > 0.0
                                      ? stats.served / elapsed_s
                                      : 0.0)
            << " req/s\n"
            << "dynamic-cache adaptations: " << stats.cache_adaptations
            << "\neis upstream calls: weather=" << eis.weather_api_calls
            << " traffic=" << eis.traffic_api_calls
            << " availability=" << eis.availability_api_calls << "\n";
  if (resilience::ResilientInformationServer* res = server.resilient_eis()) {
    std::cout << "degraded tables: " << stats.degraded_tables << "\n";
    SimTime at = states.back().time;
    for (resilience::UpstreamKind kind : resilience::kAllUpstreamKinds) {
      resilience::UpstreamResilienceStats rs = res->ResilienceSnapshot(kind,
                                                                       at);
      std::cout << "resilience " << resilience::UpstreamKindName(kind)
                << ": retries=" << rs.retries << " stale=" << rs.stale_serves
                << " climatological=" << rs.climatological_serves
                << " breaker_opens=" << rs.breaker_opens << " state="
                << resilience::BreakerStateName(rs.breaker_state) << "\n";
    }
  }
  if (statsz_thread.joinable()) {
    statsz_stop.store(true, std::memory_order_release);
    statsz_thread.join();
  }
  if (statsz) std::cout << obs::StatszJson(server.metrics()) << "\n";
  return 0;
}

int StatsCmd(const Args& args) {
  auto env_result = BuildEnv(args);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();

  WorkloadOptions wo;
  wo.max_trips = 4;
  wo.max_states = 8;
  wo.seed = args.GetU64("seed", 42) ^ 0xBEEFULL;
  std::vector<VehicleState> states = BuildWorkload(env->dataset, wo);
  if (states.empty()) {
    std::cerr << "no vehicle states in dataset\n";
    return 1;
  }

  uint64_t num_requests = args.GetU64("requests", 32);
  bool json = args.Get("format", "text") == "json";

  // --shards: run the workload through the fleet runtime and print the
  // fleet statsz section plus one per-shard section per shard.
  if (args.Has("shards")) {
    if (args.GetI64("shards", 1) < 1) {
      std::cerr << Status::InvalidArgument("--shards must be >= 1") << "\n";
      return 1;
    }
    fleet::FleetServerOptions fleet_opts;
    fleet_opts.partition.num_shards =
        static_cast<size_t>(args.GetU64("shards", 1));
    fleet_opts.threads_per_shard = static_cast<int>(args.GetI64("threads",
                                                                0));
    auto fleet_result = fleet::FleetServer::Create(
        env.get(), ScoreWeights::AWE(), EcoChargeOptions{}, fleet_opts);
    if (!fleet_result.ok()) {
      std::cerr << fleet_result.status() << "\n";
      return 1;
    }
    auto fleet = std::move(fleet_result).MoveValueUnsafe();
    for (uint64_t i = 0; i < num_requests; ++i) {
      Status st = fleet->Submit(i % 4, states[i % states.size()], 3,
                                [](const OfferingTable&) {});
      if (!st.ok() && st.code() != StatusCode::kUnavailable) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    fleet->Drain();
    if (json) {
      std::cout << fleet->StatszAllJson() << "\n";
    } else {
      std::cout << fleet->StatszAllText();
    }
    return 0;
  }

  OfferingServerOptions server_opts;
  server_opts.threads = static_cast<int>(args.GetU64("threads", 0));
  OfferingServer server(env.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        server_opts);
  for (uint64_t i = 0; i < num_requests; ++i) {
    Status st = server.Submit(i % 4, states[i % states.size()], 3,
                              [](const OfferingTable&) {});
    if (!st.ok() && st.code() != StatusCode::kUnavailable) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  server.Drain();

  if (json) {
    std::cout << obs::StatszJson(server.metrics()) << "\n";
  } else {
    std::cout << obs::StatszText(server.metrics());
  }
  return 0;
}

int Info() {
  std::cout << "ecocharge 1.0.0 — CkNN-EC / EcoCharge reproduction\n"
            << "datasets:";
  for (DatasetKind kind : AllDatasetKinds()) {
    std::cout << " " << DatasetName(kind);
  }
  std::cout << "\nmethods: Brute-Force, Index-Quadtree, Random, EcoCharge, "
               "EcoCharge-Balanced\nindex backends:";
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    std::cout << " " << SpatialIndexKindName(kind);
  }
  std::cout << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "gen-network") return GenNetwork(args);
  if (command == "gen-dataset") return GenDataset(args);
  if (command == "graph") {
    if (argc < 3) return Usage();
    std::string sub = argv[2];
    Args graph_args(argc, argv, 3);
    if (sub == "build") return GraphBuild(graph_args);
    if (sub == "info") return GraphInfo(graph_args);
    if (sub == "ch") return GraphCh(graph_args);
    return Usage();
  }
  if (command == "rank") return Rank(args);
  if (command == "simulate") return Simulate(args);
  if (command == "serve") return Serve(args);
  if (command == "stats") return StatsCmd(args);
  if (command == "info") return Info();
  return Usage();
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
