// Taxi-fleet renewable hoarding — the intro's motivating scenario.
//
// A T-drive-style taxi fleet spends idle gaps between fares hoarding solar
// energy. Each taxi has a battery (EvModel) and follows a charging policy
// during its idle windows; the FleetSimulator plays the whole fleet
// against the realized solar/availability/traffic ground truth. Compared
// policies: EcoCharge, the demand-aware EcoCharge-Balanced extension, the
// nearest charger, and random picks — reporting hoarded clean kWh,
// displaced CO2, derouting, and overloaded arrivals.

#include <iomanip>
#include <iostream>

#include "core/baselines.h"
#include "core/fleet_sim.h"
#include "core/load_balancer.h"

using namespace ecocharge;

namespace {

void Print(const char* name, const FleetOutcome& o) {
  std::cout << std::left << std::setw(20) << name << std::right
            << std::setw(8) << o.total_clean_kwh << " kWh clean  "
            << std::setw(7) << o.Co2AvoidedKg() << " kg CO2 avoided  "
            << std::setw(7) << o.total_derouting_km << " km derouted  "
            << o.total_failed_stops << "/" << o.total_stops
            << " stops found full\n";
}

}  // namespace

int main() {
  EnvironmentOptions env_opts;
  env_opts.kind = DatasetKind::kTDrive;
  env_opts.dataset_scale = 0.01;
  env_opts.num_chargers = 500;
  env_opts.seed = 2024;
  auto env_result = MakeEnvironment(env_opts);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();

  FleetSimOptions sim_opts;
  sim_opts.idle_window_s = 45.0 * kSecondsPerMinute;
  sim_opts.stop_probability = 0.5;
  FleetSimulator sim(env.get(), sim_opts);
  std::vector<FleetVehicle> fleet = sim.MakeFleet(60);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "Fleet: " << fleet.size() << " taxis over the "
            << env->dataset.name << " network, " << env->chargers.size()
            << " chargers, 45-min idle windows\n\n";

  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions eco_opts;
  eco_opts.radius_m = 15000.0;

  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(), weights,
                      eco_opts);
  Print("EcoCharge", sim.Run(fleet, eco));

  BalancedEcoChargeRanker balanced(env->estimator.get(),
                                   env->charger_index.get(), weights,
                                   eco_opts);
  Print("EcoCharge-Balanced", sim.Run(fleet, balanced));

  QuadtreeRanker nearest(env->estimator.get(), env->charger_index.get(),
                         weights, /*candidate_budget=*/1);
  Print("Nearest charger", sim.Run(fleet, nearest));

  RandomRanker random(env->estimator.get(), env->charger_index.get(),
                      eco_opts.radius_m, 99);
  Print("Random charger", sim.Run(fleet, random));

  std::cout << "\nEcoCharge dynamic cache: " << eco.cache().hits()
            << " adaptations / "
            << eco.cache().hits() + eco.cache().misses() << " queries\n";
  EisCallStats eis = env->estimator->information_server().Stats();
  std::cout << "EIS upstream calls: weather=" << eis.weather_api_calls
            << " availability=" << eis.availability_api_calls
            << " traffic=" << eis.traffic_api_calls
            << " (weather cache hit rate " << std::setprecision(0)
            << 100.0 * eis.weather_cache.HitRate() << "%)\n";
  return 0;
}
