// Urban commute — the paper's Fig. 1/3 scenario.
//
// A driver schedules a morning trip across an Oldenburg-style city with 20
// EV chargers. The example prints, for every ~4 km path segment p_i, the
// Offering Table EcoCharge would show, and then the continuous-NN split
// points along one segment: the exact locations where the spatially
// nearest charger changes (the <b, p> pairs of the CkNN formulation).

#include <iomanip>
#include <iostream>

#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/split_points.h"
#include "core/workload.h"

using namespace ecocharge;

int main() {
  EnvironmentOptions env_opts;
  env_opts.kind = DatasetKind::kOldenburg;
  env_opts.dataset_scale = 0.01;
  env_opts.num_chargers = 20;  // the b_1 ... b_20 of Figure 1
  env_opts.max_derouting_m = 40000.0;
  env_opts.seed = 7;
  auto env_result = MakeEnvironment(env_opts);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();

  // Pick the longest trajectory as the scheduled trip P.
  const Trajectory* trip = &env->dataset.trajectories.front();
  for (const Trajectory& t : env->dataset.trajectories) {
    if (t.LengthMeters() > trip->LengthMeters()) trip = &t;
  }
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "Scheduled trip P: " << trip->LengthMeters() / 1000.0
            << " km starting at t=" << trip->StartTime() / kSecondsPerHour
            << "h with " << env->chargers.size() << " chargers b1..b"
            << env->chargers.size() << "\n\n";

  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions opts;
  opts.radius_m = 25000.0;
  opts.q_distance_m = 5000.0;
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(), weights,
                      opts);

  std::vector<VehicleState> states =
      TripStates(*env->dataset.network, *trip, 4000.0, kSecondsPerHour);
  std::cout << "--- Offering Tables along P (" << states.size()
            << " segments) ---\n";
  for (const VehicleState& state : states) {
    OfferingTable table = eco.Rank(state, 3);
    std::cout << table.ToString(env->chargers) << "\n";
  }

  // Continuous 1-NN split points along the first segment: where does the
  // nearest charger change while driving?
  std::vector<Point> sites;
  for (const EvCharger& c : env->chargers) sites.push_back(c.position);
  const VehicleState& s0 = states.front();
  std::vector<SplitInterval> splits =
      ContinuousNearestNeighbor(s0.position, s0.return_point_a, sites);
  std::cout << "--- Split points on segment p_0 (CkNN 1-NN) ---\n";
  for (const SplitInterval& si : splits) {
    std::cout << "  t in [" << std::setprecision(3) << si.start_t << ", "
              << si.end_t << "] -> nearest charger b" << si.site + 1 << "\n";
  }
  std::cout << "\nDynamic cache: " << eco.cache().hits() << " hits / "
            << eco.cache().hits() + eco.cache().misses() << " queries\n";
  return 0;
}
