// Quickstart: build a small city world, drive one trip, and print the
// EcoCharge Offering Tables alongside the Brute-Force optimum.
//
// Usage: quickstart [seed] [index]
//   index: quadtree|rtree|grid|kdtree|linear — charger-index backend; the
//   tables are identical across backends, only the query time changes.

#include <cstdlib>
#include <iostream>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/workload.h"

using namespace ecocharge;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Build a world: the Oldenburg-style dataset with 200 chargers.
  EnvironmentOptions env_opts;
  env_opts.kind = DatasetKind::kOldenburg;
  env_opts.dataset_scale = 0.01;
  env_opts.num_chargers = 200;
  env_opts.seed = seed;
  if (argc > 2) {
    auto kind = ParseSpatialIndexKind(argv[2]);
    if (!kind.ok()) {
      std::cerr << kind.status() << "\n";
      return 2;
    }
    env_opts.index_kind = kind.value();
  }
  auto env_result = MakeEnvironment(env_opts);
  if (!env_result.ok()) {
    std::cerr << "environment: " << env_result.status() << "\n";
    return 1;
  }
  std::unique_ptr<Environment> env_ptr =
      std::move(env_result).MoveValueUnsafe();
  Environment& env = *env_ptr;
  std::cout << "World: " << env.dataset.name << " network with "
            << env.dataset.network->NumNodes() << " nodes, "
            << env.dataset.network->NumEdges() << " edges, "
            << env.chargers.size() << " chargers ("
            << SpatialIndexKindName(env.index_kind) << " index), "
            << env.dataset.trajectories.size() << " trajectories\n\n";

  // 2. Take the first trip and turn it into per-segment vehicle states.
  const Trajectory& trip = env.dataset.trajectories.front();
  std::vector<VehicleState> states =
      TripStates(*env.dataset.network, trip, /*segment_length_m=*/4000.0,
                 /*charge_window_s=*/kSecondsPerHour);
  std::cout << "Scheduled trip of " << trip.LengthMeters() / 1000.0
            << " km -> " << states.size() << " segments\n\n";

  // 3. Rank with EcoCharge and compare against the Brute-Force optimum.
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions eco_opts;
  eco_opts.radius_m = 20000.0;
  eco_opts.q_distance_m = 5000.0;
  EcoChargeRanker eco(env.estimator.get(), env.charger_index.get(), weights,
                      eco_opts);
  BruteForceRanker brute(env.estimator.get(), weights);

  const size_t k = 3;
  for (const VehicleState& state : states) {
    OfferingTable table = eco.Rank(state, k);
    std::cout << table.ToString(env.chargers);
    OfferingTable best = brute.Rank(state, k);
    std::cout << "  (optimal top-1 would be b" << best.top().charger_id
              << ")\n\n";
  }
  std::cout << "Dynamic cache: " << eco.cache().hits() << " hits, "
            << eco.cache().misses() << " misses\n";
  return 0;
}
