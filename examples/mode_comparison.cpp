// Mode comparison — Section IV's three deployment modes.
//
// Runs the same EcoCharge workload and projects the measured per-query
// compute time through the mode latency model: Mode 1 (vehicle's embedded
// OS), Mode 2 (centralized on the EIS), Mode 3 (driver's phone). Shows the
// end-to-end latency a driver would perceive and how the EIS caches cut
// the upstream API traffic that Modes 1/3 must pull.

#include <iomanip>
#include <iostream>

#include "common/statistics.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "eis/modes.h"
#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/workload.h"

using namespace ecocharge;

int main() {
  EnvironmentOptions env_opts;
  env_opts.kind = DatasetKind::kCalifornia;
  env_opts.dataset_scale = 0.01;
  env_opts.num_chargers = 800;
  env_opts.seed = 11;
  auto env_result = MakeEnvironment(env_opts);
  if (!env_result.ok()) {
    std::cerr << env_result.status() << "\n";
    return 1;
  }
  auto env = std::move(env_result).MoveValueUnsafe();

  WorkloadOptions wo;
  wo.max_trips = 20;
  wo.max_states = 60;
  std::vector<VehicleState> states = BuildWorkload(env->dataset, wo);

  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions opts;
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(), weights,
                      opts);

  // Measure the algorithm itself and the upstream traffic behind it.
  EisCallStats before = env->estimator->information_server().Stats();
  RunningStats compute_ms;
  for (const VehicleState& state : states) {
    Stopwatch timer;
    eco.Rank(state, 3);
    compute_ms.Add(timer.ElapsedMillis());
  }
  EisCallStats after = env->estimator->information_server().Stats();
  uint64_t upstream = (after.weather_api_calls - before.weather_api_calls) +
                      (after.availability_api_calls -
                       before.availability_api_calls) +
                      (after.traffic_api_calls - before.traffic_api_calls);

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "Workload: " << states.size() << " Offering Tables, mean "
            << compute_ms.mean() << " ms compute each; "
            << static_cast<double>(upstream) /
                   static_cast<double>(states.size())
            << " upstream API calls per query behind the EIS caches\n"
            << "(the EIS consolidates each query's EC data into one batched "
               "response, so clients pay one fetch round)\n\n";

  ModeLatencyModel model;
  std::cout << std::left << std::setw(22) << "Mode" << std::setw(14)
            << "end-to-end" << "notes\n";
  for (ExecutionMode mode : {ExecutionMode::kEmbedded, ExecutionMode::kServer,
                             ExecutionMode::kEdge}) {
    double ms = model.EndToEndMs(mode, compute_ms.mean(),
                                 /*api_batches=*/1);
    std::cout << std::setw(22) << ExecutionModeName(mode) << std::setw(14)
              << (TableWriter::Fmt(ms, 2) + " ms");
    switch (mode) {
      case ExecutionMode::kEmbedded:
        std::cout << "slow SoC, pulls cached EC data from the EIS";
        break;
      case ExecutionMode::kServer:
        std::cout << "fast CPU, one round trip carrying the table";
        break;
      case ExecutionMode::kEdge:
        std::cout << "phone CPU via Android Auto / CarPlay";
        break;
    }
    std::cout << "\n";
  }
  std::cout << "\nThe crossover: once per-query compute exceeds ~"
            << (model.server_rtt_ms - model.per_api_batch_ms) /
                   (model.embedded_cpu_factor - 1.0)
            << " ms, Mode 2 (server) beats Mode 1 even after paying the "
               "round trip.\n";
  return 0;
}
